"""The surrogate hot-path benchmark behind ``repro bench``.

Two layers:

* **micro** — :class:`~repro.core.cost_model.CitroenCostModel` timings at
  ``n`` observations (default 64/256/512): full refit, incremental
  ``add_observation`` (extend), batched predict and coverage over a
  candidate population — each against the legacy scalar/full-refit
  baseline;
* **end-to-end** — a seeded CITROEN tune at a fixed measurement budget,
  run twice: once with the incremental/warm-started/vectorized surrogate
  (the default) and once with the pre-optimisation model path
  (``model_opts=dict(incremental=False, warm_start=False,
  vectorized=False)``).  Model-side wall time is the sum of the traced
  ``fit`` + ``featurize`` + ``acquisition`` spans, so the win shows up in
  exactly the spans the overhead analysis (§5.4) talks about.

The payload written to ``BENCH_surrogate.json`` is self-describing
(schema tag, git revision, library versions, per-phase wall/CPU seconds)
and diffable: ``repro diff a.json b.json`` gates on the model-side wall
ratio via :func:`diff_bench`.

A second suite (``repro bench --suite interp``, schema ``bench_interp``)
times the measurement engine itself: per-opcode-family micro kernels and
whole cbench workloads run under the tree-walking interpreter, the flat
register bytecode VM, and the VM with fused superblock kernels
(:mod:`repro.machine.fuse`), plus end-to-end measurements/sec figures
through :class:`~repro.machine.profiler.Profiler` — the number that
bounds how many search points a tuner can evaluate per second.  The e2e
scenario rotates through distinct optimisation variants with revisits,
so the ``bytecode`` engine row exercises the full default path (fusion +
IR-identity execution memo) while ``bytecode_base`` isolates raw
dispatch; ``e2e_multi`` drives :meth:`AutotuningTask.measure_batch` at
several worker counts over one shared artifact store and asserts the
measured histories are jobs-invariant.  Both suites share
:func:`diff_bench`/``repro diff`` gating (the interp gates are the
bytecode end-to-end wall ratio and, when both payloads carry it, the
multi-worker e2e wall ratio).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

SCHEMA = "bench_surrogate"
SCHEMA_INTERP = "bench_interp"
SCHEMAS = (SCHEMA, SCHEMA_INTERP)
SCHEMA_VERSION = 1

#: the spans that constitute "model-side" work in the tuner loop
MODEL_SPANS = ("fit", "featurize", "acquisition")

#: model_opts reproducing the pre-optimisation surrogate path
LEGACY_MODEL_OPTS = {"incremental": False, "warm_start": False, "vectorized": False}


def git_rev() -> str:
    """The repository revision the numbers belong to (or ``unknown``)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip()
    except Exception:
        return "unknown"


class _Stopwatch:
    """Wall + CPU seconds around a block."""

    def __enter__(self) -> "_Stopwatch":
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc) -> None:
        self.wall = time.perf_counter() - self._w0
        self.cpu = time.process_time() - self._c0


def synthetic_observations(
    n: int, n_keys: int, seed: int
) -> List[Dict[str, Dict[str, int]]]:
    """Sparse per-module statistics dicts shaped like real compile stats."""
    rng = np.random.default_rng(seed)
    keys = [f"pass{i // 4}.Stat{i % 4}" for i in range(n_keys)]
    out = []
    for _ in range(n):
        active = rng.random(n_keys) < 0.3  # sparse, like real counters
        stats = {
            k: int(v)
            for k, v, a in zip(keys, rng.integers(1, 200, n_keys), active)
            if a
        }
        out.append({"mod": stats})
    return out


def _build_model(observations, runtimes, seed: int, legacy: bool):
    from repro.core.cost_model import CitroenCostModel

    opts = LEGACY_MODEL_OPTS if legacy else {}
    model = CitroenCostModel(seed=seed, **opts)
    for per_module, y in zip(observations, runtimes):
        model.add_observation(per_module, y)
    return model


def bench_micro(
    sizes: Sequence[int] = (64, 256, 512),
    n_keys: int = 60,
    n_candidates: int = 256,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Per-operation timings at each dataset size, fast vs legacy path."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        obs = synthetic_observations(n + 1, n_keys, seed)
        rng = np.random.default_rng(seed + 1)
        runtimes = list(1.0 + rng.random(n + 1))
        cands = [
            {"mod": pm["mod"]}
            for pm in synthetic_observations(n_candidates, n_keys, seed + 2)
        ]
        row: Dict[str, object] = {"n": int(n), "n_candidates": int(n_candidates)}
        for mode, legacy in (("fast", False), ("legacy", True)):
            model = _build_model(obs[:n], runtimes[:n], seed, legacy)
            with _Stopwatch() as t_fit:
                model.fit(force=True)
            # one more observation: extend on the fast path, a full refit
            # marked stale + rebuilt on the legacy path
            with _Stopwatch() as t_add:
                model.add_observation(obs[n], runtimes[n])
                model.fit()
            merged = [model.merge_config_stats(pm) for pm in cands]
            with _Stopwatch() as t_pred:
                model.predict_merged(merged)
            with _Stopwatch() as t_cov:
                model.coverage_many(merged)
            row[mode] = {
                "fit": {"wall": t_fit.wall, "cpu": t_fit.cpu},
                "add_observation": {"wall": t_add.wall, "cpu": t_add.cpu},
                "predict": {"wall": t_pred.wall, "cpu": t_pred.cpu},
                "coverage": {"wall": t_cov.wall, "cpu": t_cov.cpu},
                "n_refits": model.n_refits,
                "n_extends": model.n_extends,
            }
        rows.append(row)
    return rows


def bench_tune(
    program: str = "security_sha",
    budget: int = 100,
    seed: int = 1,
    seq_length: int = 16,
    legacy: bool = False,
    jobs: int = 1,
) -> Dict[str, object]:
    """One traced end-to-end CITROEN tune; spans aggregated per phase."""
    from repro.cli import _load_program
    from repro.core.citroen import Citroen
    from repro.core.task import AutotuningTask
    from repro.obs.trace import Tracer

    tracer = Tracer()
    with _Stopwatch() as total, AutotuningTask(
        _load_program(program),
        platform="arm-a57",
        seed=seed,
        seq_length=seq_length,
        jobs=jobs,
        tracer=tracer,
    ) as task:
        tuner = Citroen(
            task,
            seed=seed,
            model_opts=dict(LEGACY_MODEL_OPTS) if legacy else None,
        )
        result = tuner.tune(budget)

    spans: Dict[str, Dict[str, float]] = {}
    for event in tracer.spans():
        agg = spans.setdefault(
            event["name"], {"wall": 0.0, "cpu": 0.0, "count": 0}
        )
        agg["wall"] += float(event.get("wall", 0.0))
        agg["cpu"] += float(event.get("cpu", 0.0))
        agg["count"] += 1
    model_wall = sum(spans.get(name, {}).get("wall", 0.0) for name in MODEL_SPANS)
    model_cpu = sum(spans.get(name, {}).get("cpu", 0.0) for name in MODEL_SPANS)
    return {
        "program": program,
        "budget": budget,
        "seed": seed,
        "seq_length": seq_length,
        "jobs": jobs,
        "legacy": bool(legacy),
        "spans": spans,
        "model_wall_seconds": model_wall,
        "model_cpu_seconds": model_cpu,
        "model_seconds": tuner.model_seconds,
        "total_wall_seconds": total.wall,
        "total_cpu_seconds": total.cpu,
        "n_measurements": len(result.measurements),
        "best_runtime": result.best_runtime,
        "speedup_vs_o3": result.speedup_over_o3(),
        "gp_refits": tuner.model.n_refits,
        "gp_extends": tuner.model.n_extends,
    }


def run_bench(
    program: str = "security_sha",
    budget: int = 100,
    seed: int = 1,
    seq_length: int = 16,
    sizes: Sequence[int] = (64, 256, 512),
    baseline: bool = True,
) -> Dict[str, object]:
    """The full benchmark payload (micro + end-to-end, fast vs legacy)."""
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "git_rev": git_rev(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "program": program,
        "budget": budget,
        "seed": seed,
        "micro": bench_micro(sizes=sizes, seed=seed),
        "tune": {"fast": bench_tune(program, budget, seed, seq_length)},
    }
    if baseline:
        tune = payload["tune"]
        tune["legacy"] = bench_tune(program, budget, seed, seq_length, legacy=True)
        fast_wall = tune["fast"]["model_wall_seconds"]
        tune["model_wall_speedup"] = (
            tune["legacy"]["model_wall_seconds"] / fast_wall
            if fast_wall > 0
            else float("inf")
        )
    return payload


# ---------------------------------------------------------------------------
# interpreter / bytecode-VM suite (``--suite interp``)
# ---------------------------------------------------------------------------

#: kernel iteration count giving ~100k interpreted steps per family run
_KERNEL_ITERS = 4000


def _kernel_int_alu(iters: int):
    """add/sub/mul/xor/and/shl/ashr over a 64-bit accumulator."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("k_int_alu")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(1, I64), acc)

    def body(bb, i):
        cur = bb.load(I64, acc)
        iw = bb.sext(i, I64)
        t = bb.add(cur, iw, I64)
        t = bb.mul(t, c(2654435761, I64), I64)
        t = bb.xor(t, c(0x5DEECE66D, I64), I64)
        t = bb.and_(t, c((1 << 48) - 1, I64), I64)
        t = bb.shl(t, c(3, I64), I64)
        t = bb.ashr(t, c(2, I64), I64)
        t = bb.sub(t, iw, I64)
        bb.store(t, acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_int_div(iters: int):
    """sdiv/srem with sign-alternating operands (the C-truncation path)."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("k_int_div")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(-123456789, I64), acc)

    def body(bb, i):
        cur = bb.load(I64, acc)
        iw = bb.sext(i, I64)
        d = bb.add(iw, c(3, I64), I64)
        q = bb.sdiv(cur, d, I64)
        r = bb.srem(cur, d, I64)
        t = bb.sub(q, r, I64)
        t = bb.mul(t, c(-7, I64), I64)
        t = bb.add(t, iw, I64)
        bb.store(t, acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_float(iters: int):
    """fadd/fmul/fdiv/sitofp/fptosi round trips."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import F64, I32, I64, Module

    mod = Module("k_float")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(F64, hint="acc")
    b.store(c(1.5, F64), acc)

    def body(bb, i):
        cur = bb.load(F64, acc)
        x = bb.sitofp(bb.add(i, c(1, I32), I32), F64)
        t = bb.fmul(cur, c(1.0000001, F64), F64)
        t = bb.fadd(t, bb.fdiv(x, c(65536.0, F64), F64), F64)
        t = bb.fsub(t, bb.fdiv(t, c(1024.0, F64), F64), F64)
        bb.store(t, acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.fptosi(b.load(F64, acc), I64)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_compare_branch(iters: int):
    """signed *and unsigned* icmp feeding data-dependent branches."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("k_cmp_br")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(0, I64), acc)

    def body(bb, i):
        v = bb.sub(i, c(2000, I32), I32)  # sign-alternating
        is_neg = bb.icmp("slt", v, c(0, I32))
        # as unsigned, negative v is huge: takes the opposite branch
        is_big = bb.icmp("ugt", v, c(1000, I32))

        def then1(bb2):
            cur = bb2.load(I64, acc)
            bb2.store(bb2.add(cur, c(3, I64), I64), acc)

        def else1(bb2):
            cur = bb2.load(I64, acc)
            bb2.store(bb2.sub(cur, c(1, I64), I64), acc)

        bb.if_then(is_neg, then1, else1, tag="neg")

        def then2(bb2):
            cur = bb2.load(I64, acc)
            bb2.store(bb2.xor(cur, c(0xFF, I64), I64), acc)

        bb.if_then(is_big, then2, tag="big")
        sel = bb.select(
            bb.icmp("ule", v, c(7, I32)), c(11, I64), c(13, I64), I64
        )
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, sel, I64), acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_memory(iters: int, n: int = 64):
    """gep/load/store traffic over a global array and a stack buffer."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, GlobalVar, Module

    mod = Module("k_memory")
    mod.add_global(GlobalVar("table", I32, [((i * 37) % 251) for i in range(n)]))
    b = FunctionBuilder(mod, "main", [], I64)
    tab = b.gaddr("table")
    buf = b.alloca(I32, count=n, hint="buf")
    acc = b.alloca(I64, hint="acc")
    b.store(c(0, I64), acc)

    def body(bb, i):
        idx = bb.srem(i, c(n, I32), I32)
        v = bb.load(I32, bb.gep(tab, idx, I32))
        slot = bb.gep(buf, idx, I32)
        old = bb.load(I32, slot)
        bb.store(bb.add(old, v, I32), slot)
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, bb.sext(v, I64), I64), acc)

    # first pass zero-fills the stack buffer
    def zero(bb, i):
        bb.store(c(0, I32), bb.gep(buf, i, I32))

    b.counted_loop(c(0, I32), c(n, I32), zero, tag="zero")
    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_calls(iters: int):
    """a tiny callee invoked every iteration (call/ret + frame churn)."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("k_calls")
    h = FunctionBuilder(mod, "mix", [("a", I64), ("b", I64)], I64)
    t = h.xor("a", h.mul("b", c(31, I64), I64), I64)
    h.ret(h.add(t, c(17, I64), I64))

    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(7, I64), acc)

    def body(bb, i):
        cur = bb.load(I64, acc)
        r = bb.call("mix", [cur, bb.sext(i, I64)], I64)
        bb.store(r, acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_fused_chain(iters: int):
    """one long straight-line int+float ALU chain per iteration — the
    superblock fusion pass lowers nearly the whole body to one kernel."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import F64, I32, I64, Module

    mod = Module("k_fused_chain")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    facc = b.alloca(F64, hint="facc")
    b.store(c(1, I64), acc)
    b.store(c(1.0, F64), facc)

    def body(bb, i):
        t = bb.load(I64, acc)
        iw = bb.sext(i, I64)
        for k in range(4):
            t = bb.add(t, iw, I64)
            t = bb.mul(t, c(2654435761 + k, I64), I64)
            t = bb.xor(t, c(0x9E3779B9, I64), I64)
            t = bb.and_(t, c((1 << 52) - 1, I64), I64)
            t = bb.sub(t, c(k + 1, I64), I64)
        f = bb.load(F64, facc)
        x = bb.sitofp(i, F64)
        f = bb.fadd(f, bb.fmul(x, c(0.0009765625, F64), F64), F64)
        f = bb.fsub(f, bb.fmul(f, c(0.000244140625, F64), F64), F64)
        bb.store(t, acc)
        bb.store(f, facc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.add(b.load(I64, acc), b.fptosi(b.load(F64, facc), I64), I64)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_fused_wide(iters: int, lanes: int = 64):
    """64 independent lanes of identical int ALU work per iteration —
    wide dependence levels that cross ``NP_MIN_GROUP`` and execute as
    numpy vector batches inside one fused kernel."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, GlobalVar, Module

    mod = Module("k_fused_wide")
    mod.add_global(
        GlobalVar("src", I64, [((k * 2654435761) & ((1 << 63) - 1)) for k in range(lanes)])
    )
    b = FunctionBuilder(mod, "main", [], I64)
    src = b.gaddr("src")
    acc = b.alloca(I64, count=lanes, hint="acc")

    def init(bb, i):
        bb.store(c(0, I64), bb.gep(acc, i, I64))

    b.counted_loop(c(0, I32), c(lanes, I32), init, tag="init")

    def body(bb, i):
        iw = bb.sext(i, I64)
        vals = [bb.load(I64, bb.gep(src, c(k, I64), I64)) for k in range(lanes)]
        accs = [bb.load(I64, bb.gep(acc, c(k, I64), I64)) for k in range(lanes)]
        # three wide dependence levels: one numpy cohort per (level, op)
        t = [bb.mul(v, c(2654435761, I64), I64) for v in vals]
        t = [bb.xor(x, iw, I64) for x in t]
        t = [bb.add(a, x, I64) for a, x in zip(accs, t)]
        for k, x in enumerate(t):
            bb.store(x, bb.gep(acc, c(k, I64), I64))

    b.counted_loop(c(0, I32), c(iters, I32), body)
    total = b.alloca(I64, hint="total")
    b.store(c(0, I64), total)

    def reduce(bb, i):
        cur = bb.load(I64, total)
        bb.store(bb.add(cur, bb.load(I64, bb.gep(acc, i, I64)), I64), total)

    b.counted_loop(c(0, I32), c(lanes, I32), reduce, tag="reduce")
    out = b.load(I64, total)
    b.output(out)
    b.ret(out)
    return mod


def _kernel_vector(iters: int):
    """an SLP-vectorized dot-product body (vload/vbinop/vreduce)."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, GlobalVar, Module
    from repro.compiler.opt_tool import run_opt

    lanes = 8
    mod = Module("k_vector")
    mod.add_global(GlobalVar("w", I32, [i + 1 for i in range(lanes)]))
    mod.add_global(GlobalVar("d", I32, [2 * i + 1 for i in range(lanes)]))
    b = FunctionBuilder(mod, "main", [], I64)
    w = b.gaddr("w")
    d = b.gaddr("d")
    acc = b.alloca(I64, hint="acc")
    b.store(c(0, I64), acc)

    def body(bb, i):
        total = None
        for k in range(lanes):
            wv = bb.load(I32, bb.gep(w, c(k, I64), I32))
            dv = bb.load(I32, bb.gep(d, c(k, I64), I32))
            m = bb.mul(wv, dv, I32)
            total = m if total is None else bb.add(total, m, I32)
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, bb.sext(total, I64), I64), acc)

    b.counted_loop(c(0, I32), c(iters, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    cr = run_opt(mod, ["mem2reg", "slp-vectorizer"])
    return cr.module


#: family name -> builder; iteration counts scaled so every family does a
#: comparable amount of interpreted work per run
KERNEL_FAMILIES = {
    "int_alu": _kernel_int_alu,
    "int_div": _kernel_int_div,
    "float": _kernel_float,
    "compare_branch": _kernel_compare_branch,
    "memory": _kernel_memory,
    "calls": _kernel_calls,
    "vector": _kernel_vector,
    "fused_chain": _kernel_fused_chain,
    "fused_wide": _kernel_fused_wide,
}

#: per-family iteration divisors — heavier bodies do fewer trips so every
#: family interprets a comparable number of steps per run
_KERNEL_ITER_DIV = {"vector": 8, "fused_chain": 4, "fused_wide": 16}


def _time_engines(modules, entry: str, fuel: int, runs: int) -> Dict[str, object]:
    """Run ``modules`` under all three engines, checking parity as we go."""
    from repro.machine.bytecode import BytecodeVM, compile_module
    from repro.machine.fuse import fuse_module
    from repro.machine.interp import Interpreter

    with _Stopwatch() as t_compile:
        bcs = [compile_module(m) for m in modules]
    kernels = fused_ops = 0
    with _Stopwatch() as t_fusep:
        fused_bcs = []
        for raw in bcs:
            fbc, stats = fuse_module(raw)
            fused_bcs.append(fbc)
            kernels += stats["kernels"]
            fused_ops += stats["fused_ops"]
    with _Stopwatch() as t_tree:
        for _ in range(runs):
            tree = Interpreter(modules, fuel=fuel).run(entry)
    vm = BytecodeVM(bcs, fuel=fuel)
    with _Stopwatch() as t_bc:
        for _ in range(runs):
            bc = vm.run(entry)
    fvm = BytecodeVM(fused_bcs, fuel=fuel)
    with _Stopwatch() as t_fused:
        for _ in range(runs):
            fused = fvm.run(entry)
    sig = tree.output_signature()
    if (
        sig != bc.output_signature()
        or tree.steps != bc.steps
        or sig != fused.output_signature()
        or tree.steps != fused.steps
    ):
        raise AssertionError(
            f"engine mismatch on {entry}: tree={sig} "
            f"bc={bc.output_signature()} fused={fused.output_signature()}"
        )
    speedup = t_tree.wall / t_bc.wall if t_bc.wall > 0 else float("inf")
    return {
        "runs": runs,
        "steps": tree.steps,
        "tree": {"wall": t_tree.wall, "cpu": t_tree.cpu},
        "bytecode": {
            "wall": t_bc.wall,
            "cpu": t_bc.cpu,
            "compile_wall": t_compile.wall,
        },
        "fused": {
            "wall": t_fused.wall,
            "cpu": t_fused.cpu,
            "fuse_wall": t_fusep.wall,
            "kernels": kernels,
            "fused_ops": fused_ops,
        },
        "speedup": speedup,
        "speedup_fused": t_tree.wall / t_fused.wall if t_fused.wall > 0 else float("inf"),
    }


def bench_interp_micro(
    iters: int = _KERNEL_ITERS, runs: int = 5
) -> List[Dict[str, object]]:
    """Per-opcode-family timings, tree walker vs bytecode VM."""
    rows: List[Dict[str, object]] = []
    for family, build in KERNEL_FAMILIES.items():
        n = iters // _KERNEL_ITER_DIV.get(family, 1)
        mod = build(n)
        row: Dict[str, object] = {"family": family, "iters": n}
        row.update(_time_engines([mod], "main", fuel=50_000_000, runs=runs))
        if family == "vector":
            row["vector_instrs"] = sum(
                1
                for fn in mod.functions.values()
                for blk in fn.blocks.values()
                for inst in blk.instrs
                if inst.op.startswith("v")
            )
        rows.append(row)
    return rows


def bench_interp_workloads(
    programs: Sequence[str] = ("telecom_gsm", "security_sha", "telecom_adpcm_c"),
    levels: Sequence[str] = ("-O0", "-O3"),
    runs: int = 3,
) -> List[Dict[str, object]]:
    """Whole-workload timings at -O0 and -O3 under both engines."""
    from repro.cli import _load_program
    from repro.compiler.opt_tool import run_opt
    from repro.compiler.pipelines import pipeline

    rows: List[Dict[str, object]] = []
    for name in programs:
        prog = _load_program(name)
        for level in levels:
            if level == "-O0":
                modules = list(prog.modules)
            else:
                seq = pipeline(level)
                modules = [run_opt(m, seq).module for m in prog.modules]
            row: Dict[str, object] = {"program": name, "level": level}
            row.update(
                _time_engines(modules, prog.entry, fuel=prog.fuel, runs=runs)
            )
            rows.append(row)
    return rows


#: optimisation-pipeline prefix lengths (as eighths of -O3) used as the e2e
#: variant rotation — distinct IR per variant, revisited like a real tune
_E2E_VARIANTS = 8


def bench_interp_e2e(
    program: str = "security_sha",
    n_measurements: int = 40,
    seed: int = 1,
    platform_name: str = "arm-a57",
) -> Dict[str, object]:
    """End-to-end measurements/sec through the :class:`Profiler`.

    This is the figure that bounds tuner throughput: each measurement is
    one full program execution plus the cycle/noise model, exactly the
    per-search-point cost inside ``AutotuningTask.measure``.  The schedule
    round-robins over ``_E2E_VARIANTS`` distinct optimisation variants
    (prefixes of the -O3 pipeline), so configurations are *revisited* as
    in a real tuning run.  Three engines share the schedule:

    * ``tree`` — the reference tree walker, execution memo off;
    * ``bytecode_base`` — raw VM dispatch, fusion and memo off (the PR 6
      engine, for attribution);
    * ``bytecode`` — the shipped default path: fused superblock kernels
      plus the IR-identity execution memo (revisits replay the recorded
      execution and only re-draw noise).

    Per-variant output signatures are asserted equal across all three
    engines.  ``steps_per_sec`` credits a memoized measurement at its
    recorded step count — the interpreted-steps-equivalent throughput.
    """
    from repro.cli import _load_program
    from repro.compiler.opt_tool import run_opt
    from repro.compiler.pipelines import pipeline
    from repro.machine.platforms import get_platform
    from repro.machine.profiler import Profiler

    prog = _load_program(program)
    plat = get_platform(platform_name)
    seq = pipeline("-O3")
    variants = []
    for v in range(_E2E_VARIANTS):
        prefix = seq[: (v * len(seq)) // (_E2E_VARIANTS - 1)] if v else []
        mods = [
            run_opt(m, prefix, target=plat.target_info()).module for m in prog.modules
        ]
        keys = [("v", v, prog.name, m.name) for m in mods]
        variants.append((mods, keys))
    schedule = [i % len(variants) for i in range(n_measurements)]

    configs = {
        "tree": dict(engine="tree", execution_memo=False),
        "bytecode_base": dict(engine="bytecode", fuse=False, execution_memo=False),
        "bytecode": dict(engine="bytecode"),
    }
    out: Dict[str, object] = {
        "program": program,
        "platform": platform_name,
        "n_measurements": n_measurements,
        "n_variants": len(variants),
        "engines": {},
    }
    sigs: Dict[str, List[object]] = {}
    for name, kwargs in configs.items():
        prof = Profiler(plat, seed=seed, fuel=prog.fuel, **kwargs)
        steps = 0
        vsigs: List[object] = [None] * len(variants)
        with _Stopwatch() as t:
            for v in schedule:
                mods, keys = variants[v]
                m = prof.measure(mods, entry=prog.entry, keys=keys)
                steps += m.result.steps
                vsigs[v] = m.output_signature()
        sigs[name] = vsigs
        out["engines"][name] = {
            "wall": t.wall,
            "cpu": t.cpu,
            "per_sec": n_measurements / t.wall if t.wall > 0 else float("inf"),
            "steps_per_sec": steps / t.wall if t.wall > 0 else float("inf"),
            "bytecode_compiles": prof.bytecode_compiles,
            "bytecode_cache_hits": prof.bytecode_cache_hits,
            "execution_memo_hits": prof.execution_memo_hits,
            "fused_kernels": prof.fused_kernels,
            "fused_ops": prof.fused_ops,
        }
    for name, vsigs in sigs.items():
        if vsigs != sigs["tree"]:
            raise AssertionError(f"e2e engine mismatch: tree vs {name}")
    tree_wall = out["engines"]["tree"]["wall"]
    base_wall = out["engines"]["bytecode_base"]["wall"]
    bc_wall = out["engines"]["bytecode"]["wall"]
    out["speedup"] = tree_wall / bc_wall if bc_wall > 0 else float("inf")
    out["speedup_base"] = base_wall / bc_wall if bc_wall > 0 else float("inf")
    return out


def bench_interp_e2e_multi(
    program: str = "telecom_gsm",
    n_configs: int = 24,
    seed: int = 3,
    seq_length: int = 12,
    jobs_levels: Sequence[int] = (1, 2, 4),
) -> Dict[str, object]:
    """Multi-worker e2e: one :meth:`AutotuningTask.measure_batch` sweep per
    worker count, full default measurement path (fusion + execution memo +
    process-shared artifact store).

    The same seeded candidate population is measured at every ``jobs``
    level; ``histories_identical`` asserts the ``(runtime, ok)`` streams
    are bit-identical across worker counts — the determinism contract the
    engine/memo/artifact layers must preserve under parallelism."""
    from repro.cli import _load_program
    from repro.core.task import AutotuningTask

    out: Dict[str, object] = {
        "program": program,
        "n_configs": n_configs,
        "seed": seed,
        "seq_length": seq_length,
        "jobs": {},
    }
    histories: Dict[int, List] = {}
    for jobs in jobs_levels:
        rng = np.random.default_rng(seed)
        with AutotuningTask(
            _load_program(program),
            platform="arm-a57",
            seed=seed,
            seq_length=seq_length,
            jobs=jobs,
        ) as task:
            mods = [m.name for m in task.program.modules]
            configs = [
                {mods[i % len(mods)]: rng.integers(0, task.alphabet, size=seq_length)}
                for i in range(n_configs)
            ]
            with _Stopwatch() as t:
                results = task.measure_batch(configs)
            tb = task.timing_breakdown()
        histories[jobs] = [(float(v), bool(ok)) for v, ok in results]
        art = tb.get("artifact_store") or {}
        out["jobs"][str(jobs)] = {
            "wall": t.wall,
            "cpu": t.cpu,
            "per_sec": n_configs / t.wall if t.wall > 0 else float("inf"),
            "compile_cache_hits": tb["compile_cache_hits"],
            "execution_memo_hits": tb["execution_memo_hits"],
            "fused_kernels": tb["fused_kernels"],
            "artifact_hits": art.get("hits", 0),
            "artifact_puts": art.get("puts", 0),
        }
    first = histories[jobs_levels[0]]
    out["histories_identical"] = all(histories[j] == first for j in jobs_levels)
    if not out["histories_identical"]:
        raise AssertionError("e2e_multi: histories diverged across jobs levels")
    return out


def run_interp_bench(
    program: str = "security_sha",
    seed: int = 1,
    n_measurements: int = 40,
    iters: int = _KERNEL_ITERS,
) -> Dict[str, object]:
    """The full interpreter-suite payload (micro + workloads + e2e)."""
    return {
        "schema": SCHEMA_INTERP,
        "schema_version": SCHEMA_VERSION,
        "git_rev": git_rev(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "program": program,
        "seed": seed,
        "micro": bench_interp_micro(iters=iters),
        "workloads": bench_interp_workloads(),
        "e2e": bench_interp_e2e(
            program=program, n_measurements=n_measurements, seed=seed
        ),
        "e2e_multi": bench_interp_e2e_multi(seed=seed + 2),
    }


def write_bench(payload: Dict[str, object], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, object]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") not in SCHEMAS:
        raise ValueError(f"{path} is not a bench payload (expected one of {SCHEMAS})")
    return payload


def diff_bench(
    path_a: str, path_b: str, max_model_ratio: float = 1.5
) -> Dict[str, object]:
    """Compare two bench payloads of the same schema.

    ``bench_surrogate``: ``b`` regresses if its model-side wall time
    exceeds ``max_model_ratio`` x ``a``'s (fast path only — the legacy
    numbers are context, not a gate).  ``bench_interp``: ``b`` regresses
    if its bytecode end-to-end measurement wall time exceeds
    ``max_model_ratio`` x ``a``'s.
    """
    a, b = load_bench(path_a), load_bench(path_b)
    if a.get("schema") != b.get("schema"):
        raise ValueError(
            f"schema mismatch: {path_a} is {a.get('schema')!r}, "
            f"{path_b} is {b.get('schema')!r}"
        )

    def ratio_check(name: str, wall_a: float, wall_b: float) -> Dict[str, object]:
        ratio = wall_b / wall_a if wall_a > 0 else float("inf")
        return {
            "name": name,
            "a": wall_a,
            "b": wall_b,
            "ratio": ratio,
            "threshold": max_model_ratio,
            "kind": "ratio",
            "ok": ratio <= max_model_ratio,
            "skipped": False,
        }

    checks: List[Dict[str, object]] = []
    if a.get("schema") == SCHEMA_INTERP:
        checks.append(
            ratio_check(
                "e2e_bytecode_wall_seconds",
                a["e2e"]["engines"]["bytecode"]["wall"],
                b["e2e"]["engines"]["bytecode"]["wall"],
            )
        )
        # multi-worker gate: highest jobs level both payloads measured;
        # payloads predating e2e_multi yield a skipped (non-gating) row
        ma, mb = a.get("e2e_multi"), b.get("e2e_multi")
        common = (
            sorted(set(ma["jobs"]) & set(mb["jobs"]), key=int) if ma and mb else []
        )
        if common:
            j = common[-1]
            checks.append(
                ratio_check(
                    f"e2e_multi_wall_seconds_jobs{j}",
                    ma["jobs"][j]["wall"],
                    mb["jobs"][j]["wall"],
                )
            )
        else:
            checks.append(
                {
                    "name": "e2e_multi_wall_seconds",
                    "a": None,
                    "b": None,
                    "ratio": None,
                    "threshold": max_model_ratio,
                    "kind": "ratio",
                    "ok": True,
                    "skipped": True,
                }
            )
    else:
        checks.append(
            ratio_check(
                "model_wall_seconds",
                a["tune"]["fast"]["model_wall_seconds"],
                b["tune"]["fast"]["model_wall_seconds"],
            )
        )
    regressions = [c["name"] for c in checks if not c["ok"]]
    return {
        "kind": "bench",
        "schema": a.get("schema"),
        "run_a": path_a,
        "run_b": path_b,
        "git_rev": {"a": a.get("git_rev"), "b": b.get("git_rev")},
        "checks": checks,
        "regressions": regressions,
        "regressed": bool(regressions),
        "ok": not regressions,
    }


def summary_table(payload: Dict[str, object]) -> str:
    """Human-readable digest of a bench payload (either schema)."""
    if payload.get("schema") == SCHEMA_INTERP:
        return _interp_summary_table(payload)
    lines = [
        f"surrogate bench @ {str(payload.get('git_rev', '?'))[:12]} "
        f"(program={payload['program']}, budget={payload['budget']}, "
        f"seed={payload['seed']})",
        "",
        f"{'n':>6s} {'op':<16s} {'fast ms':>10s} {'legacy ms':>11s} {'speedup':>8s}",
    ]
    for row in payload["micro"]:
        for op in ("fit", "add_observation", "predict", "coverage"):
            fast = row["fast"][op]["wall"] * 1e3
            legacy = row["legacy"][op]["wall"] * 1e3
            ratio = legacy / fast if fast > 0 else float("inf")
            lines.append(
                f"{row['n']:>6d} {op:<16s} {fast:>10.2f} {legacy:>11.2f} "
                f"{ratio:>7.1f}x"
            )
    tune = payload["tune"]
    fast = tune["fast"]
    lines.append("")
    lines.append(
        f"end-to-end ({fast['n_measurements']} measurements): model wall "
        f"{fast['model_wall_seconds'] * 1e3:.1f} ms "
        f"({fast['gp_refits']} refits, {fast['gp_extends']} extends)"
    )
    if "legacy" in tune:
        legacy = tune["legacy"]
        lines.append(
            f"   legacy path: model wall {legacy['model_wall_seconds'] * 1e3:.1f} ms "
            f"({legacy['gp_refits']} refits) -> "
            f"{tune['model_wall_speedup']:.1f}x model-side speedup"
        )
    return "\n".join(lines)


def _interp_summary_table(payload: Dict[str, object]) -> str:
    def _engine_row(row: Dict[str, object]) -> str:
        fused = row.get("fused")
        fused_ms = f"{fused['wall'] * 1e3:>9.1f}" if fused else f"{'-':>9s}"
        fused_x = (
            f"{row.get('speedup_fused', 0.0):>7.1f}x" if fused else f"{'-':>8s}"
        )
        return (
            f"{row['steps']:>9d} {row['tree']['wall'] * 1e3:>9.1f} "
            f"{row['bytecode']['wall'] * 1e3:>12.1f} {fused_ms} "
            f"{row['speedup']:>7.1f}x {fused_x}"
        )

    header = (
        f"{'steps':>9s} {'tree ms':>9s} {'bytecode ms':>12s} {'fused ms':>9s} "
        f"{'speedup':>8s} {'fused x':>8s}"
    )
    lines = [
        f"interp bench @ {str(payload.get('git_rev', '?'))[:12]}",
        "",
        f"{'kernel':<16s} {header}",
    ]
    for row in payload["micro"]:
        lines.append(f"{row['family']:<16s} {_engine_row(row)}")
    lines.append("")
    lines.append(f"{'workload':<22s} {header}")
    for row in payload["workloads"]:
        label = f"{row['program']} {row['level']}"
        lines.append(f"{label:<22s} {_engine_row(row)}")
    e2e = payload["e2e"]
    engines = e2e["engines"]
    tree = engines["tree"]
    bc = engines["bytecode"]
    lines.append("")
    lines.append(
        f"end-to-end ({e2e['program']}, {e2e['n_measurements']} measurements"
        + (
            f" over {e2e['n_variants']} variants"
            if "n_variants" in e2e
            else ""
        )
        + "):"
    )
    for name in ("tree", "bytecode_base", "bytecode"):
        eng = engines.get(name)
        if eng is None:
            continue
        steps_s = eng.get("steps_per_sec")
        extra = f", {steps_s / 1e6:.1f}M steps/s" if steps_s else ""
        memo = eng.get("execution_memo_hits", 0)
        extra += f", {memo} memo hits" if memo else ""
        lines.append(f"   {name:<14s} {eng['per_sec']:>8.1f} measurements/s{extra}")
    lines.append(
        f"   -> {e2e['speedup']:.1f}x vs tree"
        + (
            f", {e2e['speedup_base']:.1f}x vs unfused/unmemoized VM"
            if "speedup_base" in e2e
            else ""
        )
    )
    multi = payload.get("e2e_multi")
    if multi:
        lines.append("")
        lines.append(
            f"multi-worker e2e ({multi['program']}, {multi['n_configs']} configs, "
            f"histories identical: {multi['histories_identical']}):"
        )
        for jobs in sorted(multi["jobs"], key=int):
            row = multi["jobs"][jobs]
            lines.append(
                f"   jobs={jobs}: {row['per_sec']:>6.1f} configs/s "
                f"({row['execution_memo_hits']} memo hits, "
                f"{row['artifact_hits']} artifact hits)"
            )
    return "\n".join(lines)
