"""``repro explain`` tests: attribution replay, no-op detection, the
explain.json artifact, warehouse pass_stats ingestion, and the analyze /
export integration of the pass.* span family."""

import json
import sqlite3

import pytest

from repro.cli import main
from repro.obs import configure_logging
from repro.obs.analysis import analyze_run
from repro.obs.explain import explain_run
from repro.obs.export import chrome_trace
from repro.obs.recorder import read_events
from repro.obs.warehouse import (
    SCHEMA_VERSION,
    Warehouse,
    pass_history_table,
)
from repro.reporting import pass_attribution_table, pass_span_summary


@pytest.fixture(scope="module", autouse=True)
def _info_logging():
    configure_logging("info")
    yield
    configure_logging("info")


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One traced, pipeline-traced seeded tune shared by the module."""
    out = tmp_path_factory.mktemp("runs") / "explained"
    rc = main([
        "tune", "security_sha", "--budget", "10", "--seed", "2",
        "--seq-length", "8", "--trace-out", str(out),
        "--pipeline-trace", "incumbents", "--log-level", "warning",
    ])
    assert rc == 0
    return out


@pytest.fixture(scope="module")
def report(run_dir):
    return explain_run(run_dir)


class TestExplainRun:
    def test_report_covers_the_best_config(self, run_dir, report):
        result = json.load(open(run_dir / "result.json"))
        assert {m.module for m in report.modules} == set(result["best_config"])
        for mod in report.modules:
            assert list(mod.sequence) == result["best_config"][mod.module]
            assert len(mod.passes) == len(mod.sequence)

    def test_identifies_at_least_one_noop_pass(self, report):
        # the acceptance criterion: real tuned sequences carry dead weight
        assert report.n_noop >= 1
        for mod in report.modules:
            for p in mod.passes:
                if p.noop:
                    assert p.marginal_seconds == 0.0

    def test_deterministic_speedup_is_consistent(self, report):
        assert report.best_seconds > 0
        assert report.o3_seconds > 0
        assert report.speedup == pytest.approx(
            report.o3_seconds / report.best_seconds
        )

    def test_prefix_curve_ends_at_the_incumbent(self, report):
        for mod in report.modules:
            assert len(mod.prefix_seconds) == len(mod.sequence) + 1
            assert mod.prefix_seconds[-1] == pytest.approx(
                report.best_seconds
            )

    def test_explain_json_written_with_schema(self, run_dir, report):
        payload = json.load(open(run_dir / "explain.json"))
        assert payload["schema"] == 1
        assert payload["program"] == "security_sha"
        assert payload["n_noop"] == report.n_noop
        assert payload["speedup"] == pytest.approx(report.speedup)
        mods = payload["modules"]
        assert len(mods) == len(report.modules)
        for mod in mods:
            for p in mod["passes"]:
                assert set(p) >= {
                    "index", "pass", "wall", "changed", "noop",
                    "marginal_seconds", "stats_delta", "ir_delta",
                }

    def test_render_contains_attribution_table_and_noops(self, report):
        text = report.render()
        assert "Speedup attribution" in text
        assert "marginal us" in text
        assert "no-op" in text

    def test_compile_and_execution_caches_dedup(self, report):
        cs, es = report.compile_stats, report.execution_stats
        assert cs["compiles"] < cs["requests"]
        assert es["executions"] < es["requests"]

    def test_replay_consumes_no_rng(self, run_dir):
        # two explains of the same run are byte-identical apart from wall
        # clocks: compare everything timing-free
        a = explain_run(run_dir, write_json=False).to_dict()
        b = explain_run(run_dir, write_json=False).to_dict()

        def strip(d):
            for mod in d["modules"]:
                for p in mod["passes"]:
                    p.pop("wall"), p.pop("cpu")
            return d

        assert strip(a) == strip(b)

    def test_rejects_run_without_result(self, tmp_path):
        empty = tmp_path / "empty-run"
        empty.mkdir()
        (empty / "manifest.json").write_text(json.dumps({"command": "tune"}))
        with pytest.raises(ValueError):
            explain_run(empty)


class TestExplainCli:
    def test_cli_writes_report_and_chrome_trace(self, run_dir, tmp_path, capsys):
        out = tmp_path / "explain.md"
        ct = tmp_path / "replay.json"
        rc = main([
            "explain", str(run_dir), "--out", str(out),
            "--chrome-trace", str(ct),
        ])
        assert rc == 0
        assert "marginal us" in out.read_text()
        trace = json.load(open(ct))
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "pass" in cats
        names = {e["name"] for e in trace["traceEvents"]}
        assert "pass.run" in names and "pass.pipeline" in names

    def test_cli_no_prefixes_skips_curves(self, run_dir, capsys):
        rc = main(["explain", str(run_dir), "--no-prefixes", "--no-json"])
        assert rc == 0
        assert "prefix replay" not in capsys.readouterr().out


class TestPassSpanIntegration:
    def test_tune_events_carry_pass_spans(self, run_dir):
        events = read_events(run_dir / "events.jsonl")
        pass_runs = [e for e in events if e.get("name") == "pass.run"]
        assert pass_runs
        for e in pass_runs:
            assert e["attrs"]["pass"]
        traces = [e for e in events if e.get("name") == "pass.trace"]
        assert all(e["attrs"]["reason"] == "incumbent" for e in traces)

    def test_chrome_trace_categorizes_pass_spans(self, run_dir):
        events = read_events(run_dir / "events.jsonl")
        trace = chrome_trace(events)
        pass_events = [
            e for e in trace["traceEvents"] if e["name"].startswith("pass.")
        ]
        assert pass_events
        assert all(e["cat"] == "pass" for e in pass_events)

    def test_pass_span_summary_renders(self, run_dir):
        events = read_events(run_dir / "events.jsonl")
        text = pass_span_summary(events)
        assert "pass" in text and "changed" in text
        assert pass_span_summary([]) == (
            "(no pass.run spans; tune with --pipeline-trace)"
        )

    def test_analyze_report_has_pass_section(self, run_dir, report):
        text = analyze_run(run_dir)
        assert "## Pass pipeline (repro explain)" in text
        assert "marginal us" in text

    def test_attribution_table_empty(self):
        assert pass_attribution_table([]) == "(no passes)"


class TestWarehousePassStats:
    def test_index_ingests_explain_json(self, run_dir, report, tmp_path):
        db = tmp_path / "wh.sqlite"
        with Warehouse(db) as wh:
            wh.index_run(run_dir)
            rows = wh._conn.execute(
                "SELECT * FROM pass_stats ORDER BY module, position"
            ).fetchall()
        expected = sum(len(m.passes) for m in report.modules)
        assert len(rows) == expected
        assert sum(r["noop"] for r in rows) == report.n_noop

    def test_reindex_replaces_rows(self, run_dir, tmp_path):
        db = tmp_path / "wh.sqlite"
        with Warehouse(db) as wh:
            wh.index_run(run_dir)
            n1 = wh._conn.execute(
                "SELECT COUNT(*) AS n FROM pass_stats"
            ).fetchone()["n"]
            wh.index_run(run_dir)
            n2 = wh._conn.execute(
                "SELECT COUNT(*) AS n FROM pass_stats"
            ).fetchone()["n"]
        assert n1 == n2

    def test_pass_history_table_renders(self, run_dir, tmp_path, capsys):
        db = tmp_path / "wh.sqlite"
        rc = main(["obs", "index", str(run_dir), "--db", str(db)])
        assert rc == 0
        rc = main(["obs", "history", "--db", str(db), "--passes"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pass attribution" in out
        assert "marginal us" in out
        with Warehouse(db) as wh:
            text = pass_history_table(wh, benchmark="no_such_program")
        assert "no pass stats indexed" in text

    def test_v1_warehouse_upgrades_in_place(self, run_dir, tmp_path):
        db = tmp_path / "old.sqlite"
        with Warehouse(db) as wh:  # current schema
            wh.index_run(run_dir)
        # rewind the version stamp and drop the v2 table: a v1 file
        conn = sqlite3.connect(str(db))
        with conn:
            conn.execute("DROP TABLE pass_stats")
            conn.execute(
                "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
            )
        conn.close()
        with Warehouse(db) as wh:  # reopening migrates additively
            version = wh._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()["value"]
            assert int(version) == SCHEMA_VERSION
            wh.index_run(run_dir)  # pass_stats table exists again
            assert wh.runs()  # v1 rows survived

    def test_newer_schema_still_refused(self, tmp_path):
        db = tmp_path / "future.sqlite"
        with Warehouse(db):
            pass
        conn = sqlite3.connect(str(db))
        with conn:
            conn.execute(
                "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
            )
        conn.close()
        with pytest.raises(ValueError):
            Warehouse(db)


class TestWatchJson:
    def test_watch_json_snapshot(self, run_dir, capsys):
        rc = main(["watch", str(run_dir), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True
        assert payload["interrupted"] is False
        assert payload["n_measurements"] == 10
        assert payload["budget"] == 10
        assert isinstance(payload["best_runtime"], float)
        assert payload["manifest"]["program"] == "security_sha"

    def test_watch_json_interrupted_exit_code(self, run_dir, tmp_path, capsys):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(run_dir, broken)
        # a WAL-salvaged run persists its partial result with the flag set
        result = json.load(open(broken / "result.json"))
        result.setdefault("extras", {})["interrupted"] = True
        (broken / "result.json").write_text(json.dumps(result))
        rc = main(["watch", str(broken), "--json"])
        assert rc == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["interrupted"] is True
