"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import I16, I32, I64, Const, Module


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def build_dot_kernel(acc_ty=I64, mul_ty=I32, elem_ty=I16, lanes=8) -> Module:
    """The Fig 5.1 manually-unrolled widening dot product as a main()."""
    mod = Module("dotmod")
    b = FunctionBuilder(mod, "main", [], acc_ty)
    w = b.alloca(elem_ty, count=lanes, hint="w")
    d = b.alloca(elem_ty, count=lanes, hint="d")
    for i in range(lanes):
        b.store(c(i + 1, elem_ty), b.gep(w, c(i, I64), elem_ty))
        b.store(c(2 * i + 1, elem_ty), b.gep(d, c(i, I64), elem_ty))
    acc = b.alloca(acc_ty, hint="acc")
    b.store(c(0, acc_ty), acc)
    for i in range(lanes):
        wv = b.load(elem_ty, b.gep(w, c(i, I64), elem_ty))
        dv = b.load(elem_ty, b.gep(d, c(i, I64), elem_ty))
        ws = b.sext(wv, mul_ty)
        ds = b.sext(dv, mul_ty)
        m = b.mul(ws, ds, mul_ty)
        mw = b.sext(m, acc_ty) if acc_ty.bits > mul_ty.bits else m
        cur = b.load(acc_ty, acc)
        b.store(b.add(cur, mw, acc_ty), acc)
    res = b.load(acc_ty, acc)
    b.output(res)
    b.ret(res)
    return mod


def build_sum_loop_module(n=16, with_output=True) -> Module:
    """A simple counted summation loop over a global array."""
    from repro.compiler.ir import GlobalVar

    mod = Module("summod")
    mod.add_global(GlobalVar("data", I32, list(range(1, n + 1))))
    b = FunctionBuilder(mod, "main", [], I32)
    arr = b.gaddr("data")
    acc = b.alloca(I32, hint="acc")
    b.store(c(0, I32), acc)

    def body(bb, i):
        v = bb.load(I32, bb.gep(arr, i, I32))
        cur = bb.load(I32, acc)
        bb.store(bb.add(cur, v, I32), acc)

    b.counted_loop(c(0, I32), c(n, I32), body)
    out = b.load(I32, acc)
    if with_output:
        b.output(out)
    b.ret(out)
    return mod


@pytest.fixture
def dot_module():
    return build_dot_kernel()


@pytest.fixture
def sum_loop_module():
    return build_sum_loop_module()
