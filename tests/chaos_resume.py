"""Seeded kill-and-resume chaos harness (not pytest-collected).

Runs one uninterrupted control tune, then — for each of ``--kills``
randomly drawn kill points — launches the same tune with
``--kill-after-iter N`` (the child SIGKILLs itself the instant the Nth
measurement's WAL record is durable), resumes the corpse with
``repro tune --resume``, and asserts the final ``result.json`` is
bit-identical to the control's (wall-clock ``timing`` excluded).

Exit 0 only if every kill point recovers bit-identically.  CI runs this
as the blocking ``chaos-resume`` job; locally::

    PYTHONPATH=src python tests/chaos_resume.py --out /tmp/chaos-runs
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _tune(args: argparse.Namespace, run_dir: Path, *extra: str) -> int:
    cmd = [
        sys.executable, "-m", "repro", "tune", args.program,
        "--budget", str(args.budget),
        "--seed", str(args.seed),
        "--seq-length", str(args.seq_length),
        "--trace-out", str(run_dir),
        "--log-level", "warning",
        *extra,
    ]
    return subprocess.run(cmd, env=_env()).returncode


def _resume(run_dir: Path) -> int:
    cmd = [
        sys.executable, "-m", "repro", "tune",
        "--resume", str(run_dir),
        "--log-level", "warning",
    ]
    return subprocess.run(cmd, env=_env()).returncode


def _result_sans_timing(run_dir: Path) -> dict:
    data = json.loads((run_dir / "result.json").read_text())
    data.pop("timing", None)
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--program", default="security_sha")
    parser.add_argument("--budget", type=int, default=24)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--seq-length", type=int, default=10)
    parser.add_argument("--kills", type=int, default=3,
                        help="number of random kill points to test")
    parser.add_argument("--chaos-seed", type=int, default=7,
                        help="seeds the kill-point draw (reproducible chaos)")
    parser.add_argument("--out", default="chaos-runs",
                        help="parent directory for all run dirs")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    control = out / "control"
    print(f"[chaos] control tune: {args.program} budget={args.budget} "
          f"seed={args.seed}")
    rc = _tune(args, control)
    if rc != 0:
        print(f"[chaos] FAIL: control run exited {rc}")
        return 1
    expected = _result_sans_timing(control)

    # kill points strictly inside the budget so there is work both before
    # and after the kill (the seam is the interesting part)
    rng = random.Random(args.chaos_seed)
    points = sorted(rng.sample(range(2, args.budget - 1), k=args.kills))
    print(f"[chaos] kill points: {points}")

    failures = 0
    for k in points:
        run_dir = out / f"kill-{k}"
        rc = _tune(args, run_dir, "--kill-after-iter", str(k))
        if rc != -signal.SIGKILL and rc != 128 + signal.SIGKILL:
            print(f"[chaos] FAIL k={k}: expected SIGKILL death, got rc={rc}")
            failures += 1
            continue
        if (run_dir / "result.json").exists():
            print(f"[chaos] FAIL k={k}: killed run wrote a result.json")
            failures += 1
            continue
        rc = _resume(run_dir)
        if rc != 0:
            print(f"[chaos] FAIL k={k}: resume exited {rc}")
            failures += 1
            continue
        if _result_sans_timing(run_dir) != expected:
            print(f"[chaos] FAIL k={k}: resumed history diverged from control")
            failures += 1
            continue
        print(f"[chaos] ok k={k}: resumed bit-identical to control")

    if failures:
        print(f"[chaos] {failures}/{len(points)} kill points FAILED")
        return 1
    print(f"[chaos] all {len(points)} kill points recovered bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
