"""Tests for the incremental surrogate engine (§5.4 overhead work).

The cost model's hot path — O(n^2) ``extend`` between full refits, an
adaptive refit schedule (new keys / doubling / residual drift),
warm-started hyperparameters — plus the bench payload plumbing behind
``repro bench`` / ``repro diff``.
"""

import numpy as np
import pytest

from repro.bench import (
    LEGACY_MODEL_OPTS,
    diff_bench,
    load_bench,
    synthetic_observations,
    write_bench,
)
from repro.core import CitroenCostModel
from repro.obs.metrics import MetricsRegistry


def _obs(nvi, runtime, extra=None):
    stats = {"slp-vectorizer.NumVectorInstructions": nvi, "mem2reg.NumPromoted": 3}
    if extra:
        stats.update(extra)
    return {"long_term": stats}, runtime


def _seeded_model(n=8, **kwargs):
    """A fitted model with ``n`` same-key observations."""
    m = CitroenCostModel(seed=0, **kwargs)
    rng = np.random.default_rng(1)
    for i in range(n):
        m.add_observation(*_obs(i % 5, 1.0 + 0.1 * (i % 5) + 0.01 * rng.random()))
    m.fit()
    return m


class TestRefitSchedule:
    def test_extend_keeps_model_ready(self):
        m = _seeded_model(n=8)
        assert m.ready and m.n_refits == 1 and m.n_extends == 0
        # same keys, below the doubling threshold: pure extends
        m.add_observation(*_obs(2, 1.2))
        assert m.ready
        assert m.n_extends == 1
        m.fit()  # per-iteration call from the tuner loop: a free no-op
        assert m.n_refits == 1
        mu, sigma = m.predict([_obs(1, 0)[0]])
        assert np.isfinite(mu).all() and np.isfinite(sigma).all()
        assert m.gp.n == m.n_observations

    def test_new_statistic_key_triggers_refit(self):
        m = _seeded_model(n=8)
        dim_before = m.gp.dim
        m.add_observation(*_obs(1, 1.1, extra={"licm.NumHoisted": 4}))
        assert not m.ready  # unseen key: the GP needs a new dimension
        assert m.n_extends == 0
        m.fit()
        assert m.n_refits == 2
        assert m.gp.dim == dim_before + 1

    def test_zero_valued_new_key_does_not_force_refit(self):
        # a new key whose value is 0 contributes nothing to the feature
        # vector — it must not invalidate the fit
        m = _seeded_model(n=8)
        m.add_observation(*_obs(1, 1.1, extra={"licm.NumHoisted": 0}))
        assert m.ready and m.n_extends == 1

    def test_doubling_schedule(self):
        m = _seeded_model(n=6)
        assert m._n_at_refit == 6
        rng = np.random.default_rng(2)
        # extends until the observation count doubles, then a refit
        for i in range(6):
            m.add_observation(*_obs(i % 5, 1.0 + 0.1 * (i % 5) + 0.01 * rng.random()))
            m.fit()
        assert m.n_refits == 2
        assert m.n_extends == 5  # the 12th observation hit the doubling refit
        assert m._n_at_refit == 12

    def test_drift_triggers_early_refit(self):
        m = _seeded_model(n=8, drift_window=4, drift_threshold=4.0, refit_growth=100.0)
        # runtimes far outside anything the frozen transform/hypers saw:
        # standardized residuals blow up and the drift gate forces a refit
        # long before the (disabled) doubling schedule would
        for i in range(6):
            m.add_observation(*_obs(i % 5, 50.0 + i))
            m.fit()
        assert m.n_refits >= 2

    def test_incremental_off_reproduces_legacy_path(self):
        m = _seeded_model(n=8, **LEGACY_MODEL_OPTS)
        for i in range(4):
            m.add_observation(*_obs(i % 5, 1.0 + 0.1 * i))
            assert not m.ready  # every observation marks the fit stale
            m.fit()
        assert m.n_extends == 0
        assert m.n_refits == 5

    def test_nonfinite_runtime_never_extends(self):
        # the tuner filters infeasible runs before the model, but the
        # O(n^2) path guards anyway: a non-finite target would poison the
        # frozen Cholesky factor irrecoverably
        m = _seeded_model(n=8)
        m.add_observation(*_obs(1, float("inf")))
        assert m.n_extends == 0 and not m.ready

    def test_metrics_counters_track_engine(self):
        registry = MetricsRegistry()
        m = CitroenCostModel(seed=0, metrics=registry)
        rng = np.random.default_rng(3)
        for i in range(8):
            m.add_observation(*_obs(i % 5, 1.0 + 0.1 * (i % 5) + 0.01 * rng.random()))
        m.fit()
        m.add_observation(*_obs(2, 1.2))
        counters = registry.snapshot()["counters"]
        assert counters["citroen.gp.refits"] == m.n_refits == 1
        assert counters["citroen.gp.extends"] == m.n_extends == 1


class TestWarmStart:
    def test_lengthscales_carry_over_per_key(self):
        m = _seeded_model(n=10)
        prev_log_ls = m.gp.kernel.log_ls.copy()
        prev_dim = m.gp.dim
        m.add_observation(*_obs(2, 1.1, extra={"licm.NumHoisted": 4}))
        # refit without optimisation: the warm-started values survive
        # verbatim, making the carry-over directly observable
        m.fit(optimize_hypers=False)
        assert m.gp.dim == prev_dim + 1
        assert np.allclose(m.gp.kernel.log_ls[:prev_dim], prev_log_ls)
        # the genuinely new dimension starts from the default prior
        assert m.gp.kernel.log_ls[prev_dim] == pytest.approx(np.log(0.5))

    def test_warm_start_off_resets_to_defaults(self):
        m = _seeded_model(n=10, warm_start=False)
        m.add_observation(*_obs(2, 1.1, extra={"licm.NumHoisted": 4}))
        m.fit(optimize_hypers=False)
        assert np.allclose(m.gp.kernel.log_ls, np.log(0.5))

    def test_seeded_determinism(self):
        # the RNG contract: same seed + same observation stream (including
        # warm-started refits along the way) => identical posteriors.
        # extend() consumes no RNG and refits draw their restarts from the
        # model-owned generator only.
        def run():
            m = CitroenCostModel(seed=42)
            rng = np.random.default_rng(7)
            for i in range(16):
                m.add_observation(
                    *_obs(i % 6, 1.0 + 0.1 * (i % 6) + 0.01 * rng.random())
                )
                m.fit()
            return m

        a, b = run(), run()
        assert a.n_refits == b.n_refits and a.n_extends == b.n_extends
        q = [_obs(i, 0)[0] for i in range(5)]
        mu_a, sigma_a = a.predict(q)
        mu_b, sigma_b = b.predict(q)
        assert np.array_equal(mu_a, mu_b)
        assert np.array_equal(sigma_a, sigma_b)


class TestRelevanceAlignment:
    def test_relevance_after_registry_growth(self):
        # regression: the registry grows past the fitted GP between fits;
        # relevance() used to zip the longer key list against the shorter
        # length-scale vector, silently misattributing scores
        m = _seeded_model(n=10)
        fitted_keys = set(m._fitted_keys)
        m.vectorizer.observe_keys({"long_term::late.Key": 1})
        rel = m.relevance()
        assert rel  # still reports something
        assert {k for k, _ in rel} <= fitted_keys
        assert all(score > 0 for _, score in rel)

    def test_relevance_empty_before_fit(self):
        m = CitroenCostModel(seed=0)
        assert m.relevance() == []


class TestBenchPayload:
    def _payload(self):
        return {
            "schema": "bench_surrogate",
            "schema_version": 1,
            "git_rev": "deadbeef",
            "program": "security_sha",
            "budget": 4,
            "seed": 1,
            "micro": [],
            "tune": {"fast": {"model_wall_seconds": 0.5}},
        }

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_bench(self._payload(), path)
        assert load_bench(path)["git_rev"] == "deadbeef"

    def test_load_rejects_foreign_payload(self, tmp_path):
        path = str(tmp_path / "other.json")
        write_bench({"schema": "something_else"}, path)
        with pytest.raises(ValueError):
            load_bench(path)

    def test_diff_bench_verdict(self, tmp_path):
        a, b = self._payload(), self._payload()
        b["tune"]["fast"]["model_wall_seconds"] = 1.0  # 2x slower
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_bench(a, pa)
        write_bench(b, pb)
        assert not diff_bench(pa, pa, max_model_ratio=1.5)["regressed"]
        verdict = diff_bench(pa, pb, max_model_ratio=1.5)
        assert verdict["regressed"]
        assert verdict["regressions"] == ["model_wall_seconds"]
        assert verdict["checks"][0]["ratio"] == pytest.approx(2.0)

    def test_synthetic_observations_shape(self):
        obs = synthetic_observations(5, n_keys=12, seed=0)
        assert len(obs) == 5
        assert all(set(pm) == {"mod"} for pm in obs)
        # sparse: nobody activates every key (the empty dict is legal)
        assert all(len(pm["mod"]) < 12 for pm in obs)
        assert any(pm["mod"] for pm in obs)
