"""Unit tests for the IR data structures and builder."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import (
    BIN_OPS,
    Const,
    F64,
    Function,
    GlobalVar,
    I1,
    I16,
    I32,
    I64,
    Instr,
    Module,
    PTR,
    TERMINATORS,
    Type,
    VOID,
    is_commutative,
    vec,
)


class TestTypes:
    def test_scalar_reprs(self):
        assert repr(I32) == "i32"
        assert repr(F64) == "f64"
        assert repr(PTR) == "ptr"
        assert repr(VOID) == "void"

    def test_byte_sizes(self):
        assert I16.byte_size() == 2
        assert I32.byte_size() == 4
        assert I64.byte_size() == 8
        assert PTR.byte_size() == 8
        assert F64.byte_size() == 8
        assert I1.byte_size() == 1  # sub-byte rounds up

    def test_vec_interning(self):
        assert vec(I32, 4) is vec(I32, 4)
        assert vec(I32, 4) is not vec(I32, 8)
        assert vec(I32, 4).byte_size() == 16

    def test_kind_predicates(self):
        assert I32.is_int and not I32.is_float
        assert F64.is_float and not F64.is_int
        assert PTR.is_ptr
        assert vec(I32, 4).is_vec

    def test_types_hashable(self):
        assert len({I32, I32, I64}) == 2


class TestInstr:
    def test_clone_is_deep(self):
        inst = Instr("phi", "%x", I32, (), incoming=[("a", Const(1, I32))])
        cl = inst.clone()
        cl.attrs["incoming"].append(("b", Const(2, I32)))
        assert len(inst.attrs["incoming"]) == 1

    def test_operands_include_phi_incoming(self):
        inst = Instr("phi", "%x", I32, (), incoming=[("a", "%v"), ("b", Const(2, I32))])
        assert list(inst.reg_operands()) == ["%v"]

    def test_replace_uses_args_and_phis(self):
        inst = Instr("add", "%x", I32, ("%a", "%b"))
        assert inst.replace_uses({"%a": "%c"})
        assert inst.args == ["%c", "%b"]
        phi = Instr("phi", "%p", I32, (), incoming=[("blk", "%a")])
        assert phi.replace_uses({"%a": Const(7, I32)})
        assert phi.attrs["incoming"][0][1] == Const(7, I32)

    def test_successors_and_retarget(self):
        br = Instr("br", None, VOID, ("%c",), targets=("t", "f"))
        assert br.successors() == ("t", "f")
        br.retarget("t", "x")
        assert br.successors() == ("x", "f")
        jmp = Instr("jmp", None, VOID, (), target="a")
        jmp.retarget("a", "b")
        assert jmp.successors() == ("b",)

    def test_terminator_property(self):
        for op in TERMINATORS:
            assert Instr(op).is_terminator
        assert not Instr("add", "%x", I32, ()).is_terminator

    def test_commutativity_table(self):
        assert is_commutative("add") and is_commutative("fmul")
        assert not is_commutative("sub") and not is_commutative("sdiv")
        assert BIN_OPS >= {"add", "fdiv", "xor"}


class TestFunctionModule:
    def test_fresh_names_unique(self):
        fn = Function("f", [], VOID)
        names = {fn.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_duplicate_block_rejected(self):
        fn = Function("f", [], VOID)
        fn.add_block("entry")
        with pytest.raises(ValueError):
            fn.add_block("entry")

    def test_predecessors(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], VOID)
        b.br(c(1, I1), "a", "bb")
        b.block("a")
        b.jmp("bb")
        b.block("bb")
        b.ret()
        preds = b.fn.predecessors()
        assert sorted(preds["bb"]) == ["a", "entry"]

    def test_clone_independent(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], I32)
        x = b.add(c(1, I32), c(2, I32))
        b.ret(x)
        cl = mod.clone()
        cl.functions["f"].entry.instrs.clear()
        assert mod.functions["f"].num_instrs() == 2

    def test_module_global_dup_rejected(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [1]))
        with pytest.raises(ValueError):
            mod.add_global(GlobalVar("g", I32, [2]))

    def test_defs_map(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], I32)
        x = b.add(c(1, I32), c(2, I32))
        b.ret(x)
        defs = b.fn.defs()
        assert defs[x].op == "add"

    def test_replace_all_uses_counts(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], I32)
        x = b.add(c(1, I32), c(2, I32))
        y = b.mul(x, x, I32)
        b.ret(y)
        n = b.fn.replace_all_uses({x: Const(3, I32)})
        assert n == 1  # one instruction (the mul) was changed

    def test_reorder_blocks(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], VOID)
        b.jmp("second")
        b.block("second")
        b.ret()
        b.fn.reorder_blocks(["entry", "second"])
        assert list(b.fn.blocks) == ["entry", "second"]


class TestBuilder:
    def test_counted_loop_shape(self, sum_loop_module):
        fn = sum_loop_module.functions["main"]
        # front-end style: induction variable lives in memory
        allocas = [i for i in fn.instructions() if i.op == "alloca"]
        assert len(allocas) >= 2  # i slot + accumulator
        assert len(fn.blocks) == 5  # entry, header, body, latch, exit

    def test_if_then_else_blocks(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [("x", I32)], I32)
        cond = b.icmp("slt", "x", c(0, I32))
        slot = b.alloca(I32)
        b.if_then(cond, lambda bt: bt.store(c(-1, I32), slot), lambda bt: bt.store(c(1, I32), slot))
        b.ret(b.load(I32, slot))
        assert len(b.fn.blocks) == 4  # entry, then, else, merge

    def test_call_void_returns_none(self):
        mod = Module("m")
        cal = FunctionBuilder(mod, "callee", [], VOID)
        cal.ret()
        b = FunctionBuilder(mod, "f", [], VOID)
        assert b.call("callee", []) is None
        b.ret()
