"""Tests for the benchmark program suites."""

import pytest

from repro.compiler.verify import verify_module
from repro.machine.interp import run_program
from repro.workloads import (
    CBENCH,
    SPEC,
    cbench_names,
    cbench_program,
    random_program,
    spec_names,
    spec_program,
)


@pytest.mark.parametrize("name", cbench_names())
def test_cbench_program_valid_and_deterministic(name):
    p = cbench_program(name)
    assert p.suite == "cbench"
    for mod in p.modules:
        verify_module(mod)
    r1 = p.reference_output()
    r2 = run_program(p.modules, fuel=p.fuel)
    assert r1.output_signature() == r2.output_signature()
    assert r1.outputs, "programs must produce observable output"


@pytest.mark.parametrize("name", spec_names())
def test_spec_program_valid_and_multimodule(name):
    p = spec_program(name)
    assert p.suite == "spec"
    assert len(p.modules) >= 3, "SPEC-like programs are multi-module"
    for mod in p.modules:
        verify_module(mod)
    assert p.reference_output().outputs


def test_factories_produce_fresh_objects():
    a = cbench_program("telecom_gsm")
    b = cbench_program("telecom_gsm")
    assert a.modules[0] is not b.modules[0]


def test_unknown_names_raise():
    with pytest.raises(KeyError):
        cbench_program("nope")
    with pytest.raises(KeyError):
        spec_program("nope")


def test_get_module():
    p = cbench_program("telecom_gsm")
    assert p.get_module("long_term").name == "long_term"
    with pytest.raises(KeyError):
        p.get_module("missing")


def test_program_compile_leaves_source_untouched():
    p = cbench_program("security_sha")
    before = p.get_module("sha_transform").num_instrs()
    linked, results = p.compile({"sha_transform": ["mem2reg", "dce"]})
    assert p.get_module("sha_transform").num_instrs() == before
    assert "sha_transform" in results
    # unlisted modules pass through as-is
    assert linked[-1] is p.modules[-1]


def test_random_program_reproducible():
    a = random_program(seed=42, n_modules=2)
    b = random_program(seed=42, n_modules=2)
    assert a.reference_output().output_signature() == b.reference_output().output_signature()


def test_random_program_seeds_differ():
    sigs = {
        random_program(seed=s).reference_output().output_signature() for s in range(8)
    }
    assert len(sigs) > 1
