"""Tests for the textual IR printer/parser."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler.textual import IRParseError, parse_module, print_function, print_module
from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import pipeline
from repro.compiler.verify import verify_module
from repro.machine.interp import run_program
from repro.workloads import cbench_program, random_program

from tests.conftest import build_dot_kernel, build_sum_loop_module


def _roundtrip_program(program):
    ref = program.reference_output().output_signature()
    texts = [print_module(m) for m in program.modules]
    mods = [parse_module(t) for t in texts]
    for m in mods:
        verify_module(m)
    out = run_program(mods, program.entry, fuel=program.fuel)
    assert out.output_signature() == ref
    # printing is a fixed point after one roundtrip
    assert [print_module(m) for m in mods] == texts


class TestRoundtrip:
    def test_dot_kernel(self, dot_module):
        m2 = parse_module(print_module(dot_module))
        assert run_program([m2]).ret == run_program([dot_module]).ret

    def test_sum_loop(self, sum_loop_module):
        m2 = parse_module(print_module(sum_loop_module))
        assert run_program([m2]).ret == run_program([sum_loop_module]).ret

    @pytest.mark.parametrize("name", ["telecom_gsm", "automotive_qsort1", "network_dijkstra"])
    def test_cbench_programs(self, name):
        _roundtrip_program(cbench_program(name))

    def test_optimised_ir_roundtrips(self, dot_module):
        """Vector instructions, phis, attrs survive the text format."""
        cr = run_opt(dot_module, ["mem2reg", "slp-vectorizer", "simplifycfg"])
        m2 = parse_module(print_module(cr.module))
        verify_module(m2)
        assert run_program([m2]).ret == run_program([cr.module]).ret

    def test_o3_ir_roundtrips(self):
        prog = cbench_program("telecom_adpcm_c")
        for mod in prog.modules:
            cr = run_opt(mod, pipeline("-O3"))
            m2 = parse_module(print_module(cr.module))
            verify_module(m2)

    @given(st.integers(0, 10**6))
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_programs_roundtrip(self, seed):
        _roundtrip_program(random_program(seed=seed, n_modules=2))

    def test_function_attrs_preserved(self):
        prog = cbench_program("automotive_qsort1")
        mod = prog.get_module("qsort1")
        m2 = parse_module(print_module(mod))
        assert "internal" in m2.functions["clamp"].attrs

    def test_const_global_flag_preserved(self):
        from repro.compiler.ir import GlobalVar, I32, Module

        mod = Module("m")
        mod.add_global(GlobalVar("t", I32, [1, 2], const=True))
        m2 = parse_module(print_module(mod))
        assert m2.globals["t"].const


class TestParserErrors:
    def test_missing_header(self):
        with pytest.raises(IRParseError):
            parse_module("func @f() -> void {\nentry:\n  ret void\n}")

    def test_garbage_line(self):
        with pytest.raises(IRParseError):
            parse_module("module @m {\nthis is not ir\n}")

    def test_bad_instruction(self, dot_module):
        text = print_module(dot_module).replace("alloca i16 x 8", "alloca banana")
        with pytest.raises(IRParseError):
            parse_module(text)

    def test_instruction_outside_block(self):
        bad = "module @m {\nfunc @f() -> void {\n  ret void\n}\n}"
        with pytest.raises(IRParseError):
            parse_module(bad)


class TestPrinting:
    def test_print_function_standalone(self, sum_loop_module):
        text = print_function(sum_loop_module.functions["main"])
        assert text.startswith("func @main()")
        assert "loop.header" in text

    def test_output_is_stable(self, dot_module):
        assert print_module(dot_module) == print_module(dot_module)
