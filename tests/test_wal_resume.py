"""Durable-session tests: WAL, crash-safe recorder, checkpoint/resume.

The determinism contract under test: a seeded tune killed after its k-th
measurement and resumed via ``repro tune --resume`` produces a final
history bit-identical (everything except wall-clock ``timing``) to the
uninterrupted run.  Kills are simulated two ways — surgically (truncate
the WAL exactly where a SIGKILL would have, which is fast and covers many
kill points) and for real (a SIGTERM'd subprocess, which also exercises
the graceful-shutdown path end to end).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import cbench_program
from repro.cli import main
from repro.core import AutotuningTask, Citroen
from repro.core.wal import WAL_SCHEMA, WriteAheadLog, read_wal, split_wal
from repro.obs.analysis import analyze_run, load_run
from repro.obs.recorder import RunRecorder, read_events

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _result_sans_timing(run_dir):
    data = json.loads((Path(run_dir) / "result.json").read_text())
    data.pop("timing", None)
    return data


def _tune(run_dir, *extra, program="security_sha", budget=14, seed=7):
    return main(
        [
            "tune",
            program,
            "--budget",
            str(budget),
            "--seed",
            str(seed),
            "--seq-length",
            "8",
            "--trace-out",
            str(run_dir),
            "--log-level",
            "warning",
            *extra,
        ]
    )


def _simulate_kill(control_dir, killed_dir, k):
    """Clone a finished run as if SIGKILL'd right after measurement k.

    The WAL is cut immediately after the k-th ``measure`` record (the slot
    record that follows it in a live run is dropped too — exactly the
    window the --kill-after-iter hook dies in) and the finalized artifacts
    a killed process never writes are removed."""
    shutil.copytree(control_dir, killed_dir)
    (Path(killed_dir) / "result.json").unlink()
    (Path(killed_dir) / "metrics.json").unlink()
    wal_path = Path(killed_dir) / "wal.jsonl"
    kept, measures = [], 0
    for line in wal_path.read_text().splitlines():
        rec = json.loads(line)
        if rec.get("type") == "measure":
            if measures >= k:
                break
            measures += 1
        elif rec.get("type") == "slot" and measures >= k:
            break
        kept.append(line)
    assert measures == k, f"control run has fewer than {k} measurements"
    wal_path.write_text("\n".join(kept) + "\n")


# -- the WAL itself ------------------------------------------------------------


class TestWriteAheadLog:
    def test_roundtrip_and_header(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append({"type": "measure", "n": 1, "value": 0.5, "ok": True})
            wal.append({"type": "slot", "index": 0, "module": "m"})
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "wal", "schema": WAL_SCHEMA}
        records = read_wal(path)  # header excluded
        assert [r["type"] for r in records] == ["measure", "slot"]
        measures, slots = split_wal(records)
        assert len(measures) == 1 and len(slots) == 1

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append({"type": "measure", "n": 1, "value": 0.5, "ok": True})
        with open(path, "a") as fh:
            fh.write('{"type": "measure", "n": 2, "val')  # killed mid-write
        assert [r["n"] for r in read_wal(path)] == [1]

    def test_resume_terminates_torn_line(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append({"type": "measure", "n": 1, "value": 0.5, "ok": True})
        with open(path, "a") as fh:
            fh.write('{"torn')
        with WriteAheadLog(path, resume=True) as wal:
            wal.append({"type": "measure", "n": 2, "value": 0.4, "ok": True})
        assert [r["n"] for r in read_wal(path)] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_wal(tmp_path / "nope.jsonl") == []

    def test_fresh_open_truncates_stale_log(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WriteAheadLog(path) as wal:
            wal.append({"type": "measure", "n": 1, "value": 0.5, "ok": True})
        with WriteAheadLog(path):  # a new run in the same dir starts clean
            pass
        assert read_wal(path) == []


# -- crash-safe recorder -------------------------------------------------------


class TestRecorderCrashSafety:
    def test_atomic_writes_leave_no_tmp(self, tmp_path):
        with RunRecorder(tmp_path / "run", manifest={"program": "p"}) as rec:
            rec.write_result({"n_measurements": 0})
            rec.write_metrics()
        names = {p.name for p in (tmp_path / "run").iterdir()}
        assert not any(n.endswith(".tmp") for n in names)
        assert {"manifest.json", "metrics.json", "result.json"} <= names

    def test_leftover_tmp_is_recoverable(self, tmp_path):
        run = tmp_path / "run"
        with RunRecorder(run, manifest={"program": "p"}) as rec:
            rec.tracer.event("e1")
        # a kill between serialize and os.replace leaves only the tmp
        (run / "result.json.tmp").write_text(
            json.dumps({"program": "p", "tuner": "t", "measurements": []})
        )
        data = load_run(run)
        assert data.result is not None and data.result.program == "p"

    def test_resume_appends_events_across_torn_seam(self, tmp_path):
        run = tmp_path / "run"
        with RunRecorder(run, manifest={"program": "p", "seed": 1}) as rec:
            rec.tracer.event("before")
        with open(run / "events.jsonl", "a") as fh:
            fh.write('{"type": "span", "name": "torn-by-')
        with RunRecorder(run, resume=True) as rec:
            assert rec.manifest["program"] == "p"  # original manifest kept
            rec.tracer.event("after")
        names = [e.get("name") for e in read_events(run / "events.jsonl")]
        assert "before" in names and "after" in names


# -- kill-and-resume determinism ----------------------------------------------


@pytest.fixture(scope="module")
def control_run(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("durable") / "control"
    assert _tune(run_dir) == 0
    return run_dir


class TestKillAndResume:
    @pytest.mark.parametrize("k", [1, 5, 9])
    def test_resume_is_bit_identical(self, control_run, tmp_path, k):
        killed = tmp_path / f"killed-{k}"
        _simulate_kill(control_run, killed, k)
        assert main(["tune", "--resume", str(killed), "--log-level", "warning"]) == 0
        assert _result_sans_timing(killed) == _result_sans_timing(control_run)

    def test_resume_with_faults_is_bit_identical(self, tmp_path):
        fault_flags = (
            "--inject-faults", "crash,miscompile",
            "--fault-rate", "0.15",
            "--fault-seed", "2",
        )
        control = tmp_path / "control"
        assert _tune(control, *fault_flags, program="telecom_gsm", seed=4) == 0
        killed = tmp_path / "killed"
        _simulate_kill(control, killed, 6)
        assert main(["tune", "--resume", str(killed), "--log-level", "warning"]) == 0
        assert _result_sans_timing(killed) == _result_sans_timing(control)

    def test_resume_of_completed_run_is_idempotent(self, control_run, tmp_path):
        clone = tmp_path / "clone"
        shutil.copytree(control_run, clone)
        assert main(["tune", "--resume", str(clone), "--log-level", "warning"]) == 0
        assert _result_sans_timing(clone) == _result_sans_timing(control_run)

    def test_resume_needs_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit):
            main(["tune", "--resume", str(tmp_path / "empty")])

    def test_tune_requires_program_without_resume(self):
        with pytest.raises(SystemExit):
            main(["tune", "--budget", "2"])


@pytest.mark.parametrize("seed", [3, 11])
def test_replay_reconstructs_gp_posterior(tmp_path, seed):
    """WAL replay rebuilds the incremental GP's posterior to <= 1e-8.

    The live tuner conditions its GP one observation at a time; the
    resumed tuner reconstructs the same posterior by re-executing the loop
    with WAL-served verdicts.  Probing both models at the same point must
    agree to numerical noise."""
    budget = 12
    wal_path = tmp_path / "wal.jsonl"
    with WriteAheadLog(wal_path) as wal:
        with AutotuningTask(
            cbench_program("security_sha"), seed=seed, seq_length=8, wal=wal
        ) as task:
            tuner = Citroen(task, seed=seed)
            live = tuner.tune(budget)

    with AutotuningTask(
        cbench_program("security_sha"), seed=seed, seq_length=8
    ) as task2:
        n = task2.start_replay(read_wal(wal_path))
        assert 0 < n <= budget
        tuner2 = Citroen(task2, seed=seed)
        replayed = tuner2.tune(budget)
        assert not task2.replaying  # the stream fully drained

    a, b = live.to_dict(), replayed.to_dict()
    a.pop("timing"), b.pop("timing")
    assert a == b

    # probe the posteriors at the merged -O3 statistics point
    merged = {}
    for name in task._o3_stats:
        merged.update(tuner.model.prefix_stats(name, task.o3_stats(name)))
    mu1, s1 = tuner.model.predict_merged([merged])
    mu2, s2 = tuner2.model.predict_merged([merged])
    assert abs(float(mu1[0]) - float(mu2[0])) <= 1e-8
    assert abs(float(s1[0]) - float(s2[0])) <= 1e-8


# -- graceful shutdown (real signals, real process) ----------------------------


class TestGracefulShutdown:
    def test_sigterm_leaves_loadable_analyzable_resumable_dir(self, tmp_path):
        run_dir = tmp_path / "sigterm-run"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "tune", "security_sha",
                "--budget", "500", "--seed", "5", "--seq-length", "8",
                "--trace-out", str(run_dir), "--log-level", "warning",
            ],
            env={**os.environ, "PYTHONPATH": SRC + os.pathsep + os.environ.get("PYTHONPATH", "")},
        )
        # wait until the WAL proves a few measurements completed
        wal_path = run_dir / "wal.jsonl"
        deadline = time.time() + 60
        while time.time() < deadline:
            if wal_path.exists() and len(read_wal(wal_path)) >= 6:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("tune never reached 6 WAL records")
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 128 + signal.SIGTERM  # 143: the distinct interrupted code

        data = load_run(run_dir)  # loadable
        assert data.interrupted and data.resumable
        assert data.result is not None  # graceful stop still finalized
        assert data.result.extras.get("interrupted") is True
        assert 0 < len(data.result.measurements) < 500
        assert data.wal_measurements >= len(data.result.measurements)

        report = analyze_run(run_dir)  # analyzable
        assert "interrupted run" in report
        assert "--resume" in report

    def test_stop_flag_interrupts_tuner_loop(self):
        with AutotuningTask(
            cbench_program("security_sha"), seed=1, seq_length=8
        ) as task:
            task.request_stop()
            result = Citroen(task, seed=1).tune(10)
        assert result.measurements == []
        assert result.interrupted

    def test_stop_flag_interrupts_baseline_loop(self):
        from repro import RandomSearchTuner

        with AutotuningTask(
            cbench_program("security_sha"), seed=1, seq_length=8
        ) as task:
            task.request_stop()
            result = RandomSearchTuner(task, seed=1).tune(10)
        assert result.measurements == []
        assert result.interrupted


# -- interrupted-run analysis --------------------------------------------------


def test_analyze_interrupted_run_reports_progress(control_run, tmp_path, capsys):
    killed = tmp_path / "killed"
    _simulate_kill(control_run, killed, 5)
    report = analyze_run(killed)
    assert "interrupted run" in report
    assert "5 measurement(s) completed per WAL" in report
    assert f"--resume {killed}" in report
    data = load_run(killed)
    assert data.interrupted and data.resumable and data.wal_measurements == 5
    # the CLI path must not crash on the missing result.json either
    assert main(["analyze", str(killed)]) == 0
    capsys.readouterr()
