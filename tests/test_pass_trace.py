"""Pipeline observability tests: PassTrace mechanics, escaped statistics
keys, verify_each diagnostics, the pass.* span family, and the zero-RNG
contract (traced and untraced tuning histories are bit-identical)."""

import time

import pytest

from repro.compiler import pass_manager as pm_module
from repro.compiler.analysis import module_profile, profile_delta
from repro.compiler.opt_tool import run_opt
from repro.compiler.pass_manager import PassManager, PassTrace
from repro.compiler.statistics import StatsCollector, flat_stat_key, split_stat_key
from repro.compiler.textual import print_module
from repro.core.task import AutotuningTask
from repro.core.citroen import Citroen
from repro.obs.trace import Tracer
from repro.workloads import cbench_program

SEQ = ["mem2reg", "sroa", "instcombine", "simplifycfg", "gvn", "dse", "adce"]


def _module():
    return cbench_program("security_sha").modules[0]


class TestModuleProfile:
    def test_profile_counts_instrs_blocks_and_mix(self):
        mod = _module()
        prof = module_profile(mod)
        assert prof["instrs"] == sum(prof["functions"].values())
        assert prof["instrs"] == sum(prof["mix"].values())
        assert prof["blocks"] >= len(prof["functions"])

    def test_profile_delta_keeps_only_changes(self):
        mod = _module()
        before = module_profile(mod)
        run_opt(mod, SEQ)  # clones; the input module is untouched
        assert profile_delta(before, module_profile(mod)) == {
            "instrs": 0,
            "blocks": 0,
        }
        after = module_profile(run_opt(mod, SEQ).module)
        delta = profile_delta(before, after)
        assert delta["instrs"] == after["instrs"] - before["instrs"]
        # every reported mix entry is a real nonzero change
        for op, d in delta.get("mix", {}).items():
            assert d != 0
            assert after["mix"].get(op, 0) - before["mix"].get(op, 0) == d


class TestPassTrace:
    def test_trace_records_one_entry_per_pass(self):
        trace = PassTrace()
        cr = run_opt(_module(), SEQ, trace=trace)
        assert cr.trace is trace
        assert len(trace) == len(SEQ)
        assert [e.name for e in trace.entries] == SEQ
        assert [e.index for e in trace.entries] == list(range(len(SEQ)))

    def test_traced_compile_is_bit_identical_to_untraced(self):
        mod = _module()
        plain = run_opt(mod, SEQ)
        traced = run_opt(mod, SEQ, trace=PassTrace())
        assert print_module(plain.module) == print_module(traced.module)
        assert plain.stats_json() == traced.stats_json()

    def test_fingerprints_chain_without_recomputation(self):
        trace = PassTrace()
        run_opt(_module(), SEQ, trace=trace)
        for prev, cur in zip(trace.entries, trace.entries[1:]):
            assert prev.ir_after is cur.ir_before

    def test_entry_timing_and_offsets_are_sane(self):
        trace = PassTrace()
        run_opt(_module(), SEQ, trace=trace)
        offsets = [e.offset for e in trace.entries]
        assert offsets == sorted(offsets)
        assert all(e.wall >= 0 and e.cpu >= 0 for e in trace.entries)

    def test_changed_flag_and_stats_delta_agree(self):
        trace = PassTrace()
        run_opt(_module(), SEQ, trace=trace)
        assert any(e.changed for e in trace.entries)
        for e in trace.entries:
            if e.stats_delta:
                # stats only move when a pass did something
                assert e.changed

    def test_summary_totals(self):
        trace = PassTrace()
        run_opt(_module(), SEQ, trace=trace)
        s = trace.summary()
        assert s["passes"] == len(SEQ)
        assert s["n_changed"] == sum(1 for e in trace.entries if e.changed)
        assert s["instrs_before"] == trace.entries[0].ir_before["instrs"]
        assert s["instrs_after"] == trace.entries[-1].ir_after["instrs"]
        assert s["pass_wall"] == pytest.approx(
            sum(e.wall for e in trace.entries)
        )
        assert PassTrace().summary()["instrs_before"] is None


class TestFlatStatKeys:
    def test_round_trip_plain(self):
        assert split_stat_key(flat_stat_key("gvn", "NumGVNLoad")) == (
            "gvn",
            "NumGVNLoad",
        )

    def test_pass_names_with_dots_do_not_collide(self):
        # regression: ("a.b", "c") and ("a", "b.c") used to flatten to the
        # same "a.b.c" key, silently merging distinct counters
        k1 = flat_stat_key("a.b", "c")
        k2 = flat_stat_key("a", "b.c")
        assert k1 != k2
        assert split_stat_key(k1) == ("a.b", "c")
        assert split_stat_key(k2) == ("a", "b.c")

    def test_backslashes_escape_cleanly(self):
        key = flat_stat_key("we\\ird.pass", "Counter")
        assert split_stat_key(key) == ("we\\ird.pass", "Counter")

    def test_split_rejects_counterless_key(self):
        with pytest.raises(ValueError):
            split_stat_key("no-dot-anywhere")

    def test_as_dict_uses_flat_keys(self):
        stats = StatsCollector()
        stats.bump("sroa", "NumPromoted", 2)
        stats.bump("a.b", "c", 1)
        flat = stats.as_dict()
        assert flat[flat_stat_key("sroa", "NumPromoted")] == 2
        assert flat[flat_stat_key("a.b", "c")] == 1
        # existing dot-free pass names keep their historical key shape
        assert "sroa.NumPromoted" in flat

    def test_snapshot_diff(self):
        stats = StatsCollector()
        stats.bump("gvn", "NumLoads", 1)
        before = stats.snapshot()
        stats.bump("gvn", "NumLoads", 2)
        stats.bump("dse", "NumDeleted", 5)
        assert stats.diff(before) == {
            "gvn.NumLoads": 2,
            "dse.NumDeleted": 5,
        }
        # a snapshot is a copy, not a view
        assert stats.snapshot() != before


class TestVerifyEachDiagnostics:
    def test_failure_names_position_and_prefix(self, monkeypatch):
        calls = {"n": 0}

        def explode_on_second(module):
            calls["n"] += 1
            if calls["n"] == 2:
                raise AssertionError("synthetic corruption")

        monkeypatch.setattr(pm_module, "verify_module", explode_on_second)
        seq = ["mem2reg", "mem2reg", "mem2reg"]  # repeats: name is ambiguous
        pm = PassManager(seq, verify_each=True)
        with pytest.raises(AssertionError) as exc:
            pm.run(_module().clone())
        msg = str(exc.value)
        assert "position 1" in msg
        assert "of 3" in msg
        assert "mem2reg -> mem2reg" in msg
        assert "synthetic corruption" in msg


def _tune(pipeline_trace, tracer=None, budget=8, seed=5):
    program = cbench_program("security_sha")
    task = AutotuningTask(
        program,
        seed=seed,
        seq_length=8,
        tracer=tracer,
        pipeline_trace=pipeline_trace,
    )
    try:
        result = Citroen(task, seed=seed).tune(budget=budget)
    finally:
        task.close()
    return task, result


class TestZeroRngContract:
    def test_histories_bit_identical_across_trace_modes(self):
        baseline = None
        for mode in ("off", "incumbents", "all"):
            tracer = Tracer(enabled=True) if mode != "off" else None
            _task, result = _tune(mode, tracer=tracer)
            history = [
                (m.runtime, m.correct, m.sequence) for m in result.measurements
            ]
            if baseline is None:
                baseline = history
            else:
                assert history == baseline, f"mode {mode} diverged"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            AutotuningTask(cbench_program("security_sha"), pipeline_trace="yes")

    def test_incumbents_mode_emits_pass_spans(self):
        tracer = Tracer(enabled=True)
        task, _result = _tune("incumbents", tracer=tracer)
        names = [e["name"] for e in tracer.spans()]
        assert "pass.trace" in names
        assert "pass.pipeline" in names
        assert "pass.run" in names
        assert task.n_pass_traces > 0
        # incumbents only: strictly fewer traces than live measurements
        assert task.n_pass_traces <= task.n_measurements
        breakdown = task.timing_breakdown()
        assert breakdown["pipeline_trace"] == "incumbents"
        assert breakdown["n_pass_traces"] == task.n_pass_traces
        assert breakdown["pass_trace_seconds"] == task.pass_trace_seconds

    def test_pass_run_spans_nest_under_pipeline(self):
        tracer = Tracer(enabled=True)
        _tune("incumbents", tracer=tracer)
        spans = {e["id"]: e for e in tracer.spans()}
        for e in spans.values():
            if e["name"] != "pass.run":
                continue
            parent = spans[e["parent"]]
            assert parent["name"] == "pass.pipeline"
            attrs = e["attrs"]
            assert attrs["module"] == parent["attrs"]["module"]
            assert "pass" in attrs and "changed" in attrs
            assert "stats_delta" in attrs and "ir_delta" in attrs
            # retrospective ts lands inside the live pipeline span
            assert e["ts"] >= parent["ts"] - 1e-6
            assert e["ts"] + e["wall"] <= parent["ts"] + parent["wall"] + 1e-3

    def test_disabled_tracer_skips_replay_entirely(self):
        task, _result = _tune("all", tracer=None)  # NULL_TRACER path
        assert task.n_pass_traces == 0
        assert task.pass_trace_seconds == 0.0

    def test_incumbents_overhead_is_bounded(self):
        tracer = Tracer(enabled=True)
        t0 = time.perf_counter()
        task, _result = _tune("incumbents", tracer=tracer, budget=12)
        wall = time.perf_counter() - t0
        assert task.n_pass_traces > 0
        # the acceptance bound: sampled tracing stays under 10% of the tune
        assert task.pass_trace_seconds < 0.10 * wall, (
            f"pass tracing took {task.pass_trace_seconds:.3f}s of "
            f"{wall:.3f}s tune wall"
        )
