"""Artifact store, IR-identity execution memo, and their determinism contract.

Three layers under test:

* :mod:`repro.machine.artifacts` — content-addressed fingerprints, the
  process-shared store, disk spill, worker seeding;
* :class:`repro.machine.profiler.Profiler` — the execution memo replays
  recorded executions (including crashes) while drawing noise exactly as
  live, so measured values are bit-identical with the memo on or off;
* :class:`repro.core.task.AutotuningTask` — seeded tuning histories are
  bit-identical across every toggle combination and jobs level, and a
  killed run resumes through memo hits.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import cbench_program
from repro.cli import main
from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import pipeline
from repro.core.task import AutotuningTask
from repro.baselines.random_tuner import RandomSearchTuner
from repro.machine.artifacts import (
    ArtifactStore,
    harvest_compile_result,
    ir_fingerprint,
    local_store,
    seed_worker_store,
    set_local_store,
)
from repro.machine.bytecode import BytecodeVM, compile_module
from repro.machine.interp import FuelExhausted
from repro.machine.platforms import get_platform
from repro.machine.profiler import Profiler


def _mod(iters=50):
    from repro.bench import _kernel_int_alu

    return _kernel_int_alu(iters)


# -- fingerprints -------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert ir_fingerprint(_mod()) == ir_fingerprint(_mod())

    def test_clone_matches_and_recomputes(self):
        m = _mod()
        fp = ir_fingerprint(m)
        clone = m.clone()
        # the memo attribute must not leak onto the (mutable) clone
        assert not hasattr(clone, "_repro_ir_fp")
        assert ir_fingerprint(clone) == fp

    def test_in_place_mutation_invalidates_memo(self):
        # modules are immutable by contract once fingerprinted, but the memo
        # carries a (blocks, instrs) shape guard so a contract violation
        # recomputes instead of silently aliasing store/memo entries
        m = _mod()
        fp = ir_fingerprint(m)
        fn = next(iter(m.functions.values()))
        blk = next(b for b in fn.blocks.values() if len(b.instrs) > 1)
        blk.instrs.pop(0)
        assert ir_fingerprint(m) != fp

    def test_distinct_ir_distinct_fp(self):
        a = _mod(iters=50)
        b = _mod(iters=51)
        assert ir_fingerprint(a) != ir_fingerprint(b)

    def test_configs_lowering_to_same_ir_share_fp(self):
        base = _mod()
        # two different sequences that are IR no-ops on this kernel
        a = run_opt(base.clone(), ["dce", "dce"]).module
        b = run_opt(base.clone(), ["dce"]).module
        assert ir_fingerprint(a) == ir_fingerprint(b)


# -- the store ----------------------------------------------------------------


class TestArtifactStore:
    def test_compile_through_dedups(self):
        store = ArtifactStore()
        m = _mod()
        fp1, bc1, compiled1 = store.bytecode_for(m)
        fp2, bc2, compiled2 = store.bytecode_for(_mod())
        assert (compiled1, compiled2) == (True, False)
        assert fp1 == fp2 and bc1 is bc2
        assert store.stats()["hits"] == 1

    def test_lru_bounded(self):
        store = ArtifactStore(max_entries=2)
        for i in range(4):
            store.bytecode_for(_mod(iters=10 + i))
        assert len(store) == 2

    def test_harvest_returns_only_fresh(self):
        store = ArtifactStore()
        m = _mod()
        assert len(store.harvest([m])) == 1
        assert store.harvest([_mod()]) == []

    def test_spill_roundtrip(self, tmp_path):
        spill = str(tmp_path / "artifacts")
        a = ArtifactStore(spill_dir=spill)
        fp, bc, _ = a.bytecode_for(_mod())
        assert a.stats()["spill_writes"] == 1
        # a fresh store over the same dir loads from disk, not recompiles
        b = ArtifactStore(spill_dir=spill)
        got = b.get(fp)
        assert got is not None and b.stats()["spill_hits"] == 1
        # the loaded artifact actually runs
        out = BytecodeVM([got], fuel=1_000_000).run("main")
        ref = BytecodeVM([compile_module(_mod())], fuel=1_000_000).run("main")
        assert out.output_signature() == ref.output_signature()

    def test_corrupt_spill_is_recompiled(self, tmp_path):
        spill = str(tmp_path / "artifacts")
        a = ArtifactStore(spill_dir=spill)
        fp, _, _ = a.bytecode_for(_mod())
        path = next(Path(spill).glob("*.bc.pkl"))
        path.write_bytes(b"garbage")
        b = ArtifactStore(spill_dir=spill)
        assert b.get(fp) is None  # miss, caller recompiles
        assert b.stats()["misses"] == 1

    def test_absorb_merges_and_counts(self):
        a = ArtifactStore()
        a.bytecode_for(_mod())
        entries = a.warm_entries()
        b = ArtifactStore()
        assert b.absorb(entries) == 1
        assert b.absorb(entries) == 0  # already present

    def test_worker_seeding(self):
        prev = local_store(create=False)
        try:
            a = ArtifactStore()
            m = _mod()
            a.bytecode_for(m)
            seed_worker_store(a.warm_entries())
            ws = local_store()
            assert ws is not None and len(ws) == 1
            # counters were zeroed after seeding
            assert ws.stats()["puts"] == 0
            # module-level artifact_fn: warm module is not "fresh"
            assert harvest_compile_result((m, {})) == []
            assert len(harvest_compile_result((_mod(iters=7), {}))) == 1
        finally:
            set_local_store(prev)


# -- the execution memo -------------------------------------------------------


class TestExecutionMemo:
    def _profiler(self, **kw):
        return Profiler(get_platform("arm-a57"), seed=5, fuel=5_000_000, **kw)

    def test_memo_values_match_live(self):
        mods = [_mod()]
        on = self._profiler(execution_memo=True)
        off = self._profiler(execution_memo=False)
        for _ in range(4):
            a = on.measure(mods, entry="main")
            b = off.measure(mods, entry="main")
            assert (a.seconds, a.cycles) == (b.seconds, b.cycles)
            assert a.output_signature() == b.output_signature()
        assert on.execution_memo_hits == 3 and off.execution_memo_hits == 0

    def test_memoized_crash_reraises(self):
        mods = [_mod(iters=10_000)]
        prof = Profiler(get_platform("arm-a57"), seed=5, fuel=100)
        state0 = json.dumps(prof.rng.bit_generator.state, default=str)
        with pytest.raises(FuelExhausted):
            prof.measure(mods, entry="main")
        with pytest.raises(FuelExhausted):
            prof.measure(mods, entry="main")
        assert prof.execution_memo_hits == 1
        # a crash raises before any noise draw, live or memoized
        assert json.dumps(prof.rng.bit_generator.state, default=str) == state0

    def test_memo_spans_configs_with_identical_ir(self):
        base = _mod()
        a = run_opt(base.clone(), ["dce", "dce"]).module
        b = run_opt(base.clone(), ["dce"]).module
        prof = self._profiler()
        prof.measure([a], entry="main", keys=[("cfg", "m", ("dce", "dce"))])
        prof.measure([b], entry="main", keys=[("cfg", "m", ("dce",))])
        assert prof.execution_memo_hits == 1
        assert prof.bytecode_compiles == 1  # fingerprint-keyed cache dedups


# -- task-level determinism ---------------------------------------------------


def _history(jobs=1, budget=10, **task_kw):
    task = AutotuningTask(
        cbench_program("telecom_gsm"), seed=7, jobs=jobs, seq_length=10, **task_kw
    )
    with task:
        res = RandomSearchTuner(task, seed=11).tune(budget)
        tb = task.timing_breakdown()
    hist = tuple(
        (m.module, m.sequence, m.runtime, m.correct, m.status)
        for m in res.measurements
    )
    return hist, tb


class TestTaskDeterminism:
    def test_toggles_and_jobs_bit_identical(self):
        base, base_tb = _history()
        combos = [
            dict(fuse=False),
            dict(execution_memo=False),
            dict(shared_artifacts=False),
            dict(fuse=False, execution_memo=False, shared_artifacts=False),
            dict(jobs=2),
            dict(jobs=4, fuse=False),
        ]
        for kw in combos:
            hist, _ = _history(**kw)
            assert hist == base, f"history diverged with {kw}"
        assert base_tb["fuse"] and base_tb["execution_memo"]
        assert base_tb["shared_artifacts"]

    def test_breakdown_reports_new_counters(self):
        _, tb = _history(budget=16)
        assert tb["fused_kernels"] > 0
        assert tb["artifact_store"]["puts"] > 0
        assert "execution_memo_hits" in tb

    def test_spill_dir_implies_store_and_warms_resume(self, tmp_path):
        spill = str(tmp_path / "spill")
        _, tb1 = _history(shared_artifacts=False, artifact_spill_dir=spill)
        assert tb1["shared_artifacts"]  # spill dir implies the store
        assert tb1["artifact_store"]["spill_writes"] > 0
        _, tb2 = _history(artifact_spill_dir=spill)
        assert tb2["artifact_store"]["spill_hits"] > 0


# -- process pools ------------------------------------------------------------


def _compile_kernel(name, seq):
    """Module-level (picklable) compile fn: seq[0] is the iteration count."""
    from repro.bench import _kernel_int_alu

    return (_kernel_int_alu(int(seq[0])), {"iters": int(seq[0])})


class TestProcessPoolArtifacts:
    def test_process_workers_ship_artifacts_back(self):
        from repro.core.eval_engine import CompileEngine

        store = ArtifactStore()
        store.bytecode_for(_mod(iters=30))  # pre-warm: rides the initializer
        engine = CompileEngine(
            _compile_kernel,
            jobs=2,
            executor="process",
            shared_artifacts=store,
            artifact_fn=harvest_compile_result,
        )
        try:
            items = [("m", (30,)), ("m", (31,)), ("m", (32,))]
            results = engine.compile_batch(items)
            assert len(results) == 3
        finally:
            engine.close()
        # fresh worker-compiled artifacts rode back and were absorbed;
        # the pre-warmed one was seeded into workers, so it is not fresh
        assert len(store) == 3


# -- CLI toggles + kill/resume through memo hits ------------------------------


def _tune(run_dir, *extra, program="telecom_gsm", budget=14, seed=4):
    return main(
        [
            "tune",
            program,
            "--budget",
            str(budget),
            "--seed",
            str(seed),
            "--seq-length",
            "8",
            "--trace-out",
            str(run_dir),
            "--log-level",
            "warning",
            *extra,
        ]
    )


def _result_sans_timing(run_dir):
    data = json.loads((Path(run_dir) / "result.json").read_text())
    data.pop("timing", None)
    return data


class TestCliTogglesAndResume:
    def test_cli_toggles_bit_identical(self, tmp_path):
        control = tmp_path / "control"
        assert _tune(control) == 0
        for flags in (
            ("--no-fuse",),
            ("--no-execution-memo",),
            ("--no-shared-artifacts",),
            ("--no-fuse", "--no-execution-memo", "--no-shared-artifacts"),
        ):
            out = tmp_path / ("run" + "".join(flags).replace("-", ""))
            assert _tune(out, *flags) == 0
            assert _result_sans_timing(out) == _result_sans_timing(control)

    def test_kill_resume_replays_through_memo_hits(self, tmp_path):
        import shutil

        control = tmp_path / "control"
        assert _tune(control, budget=18) == 0
        timing = json.loads((control / "result.json").read_text())["timing"]
        assert timing["execution_memo_hits"] > 0, (
            "control run exercised no memo hits; enlarge the budget"
        )
        killed = tmp_path / "killed"
        shutil.copytree(control, killed)
        (killed / "result.json").unlink()
        (killed / "metrics.json").unlink()
        wal_path = killed / "wal.jsonl"
        kept, measures = [], 0
        for line in wal_path.read_text().splitlines():
            rec = json.loads(line)
            if rec.get("type") == "measure":
                if measures >= 7:
                    break
                measures += 1
            elif rec.get("type") == "slot" and measures >= 7:
                break
            kept.append(line)
        wal_path.write_text("\n".join(kept) + "\n")
        assert main(["tune", "--resume", str(killed), "--log-level", "warning"]) == 0
        assert _result_sans_timing(killed) == _result_sans_timing(control)

    def test_artifact_store_flag_spills(self, tmp_path):
        store = tmp_path / "store"
        run = tmp_path / "run"
        assert _tune(run, "--artifact-store", str(store), budget=6) == 0
        assert list(store.glob("*.bc.pkl")), "no artifacts spilled"
        # identical history with the spill enabled
        control = tmp_path / "control"
        assert _tune(control, budget=6) == 0
        assert _result_sans_timing(run) == _result_sans_timing(control)
