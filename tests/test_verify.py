"""Verifier tests: each structural invariant is actually enforced."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, I1, I32, Instr, Module, VOID
from repro.compiler.verify import VerifyError, verify_function, verify_module


def valid_fn():
    mod = Module("m")
    b = FunctionBuilder(mod, "f", [("x", I32)], I32)
    cond = b.icmp("slt", "x", c(0, I32))
    b.br(cond, "a", "bb")
    b.block("a")
    b.jmp("bb")
    b.block("bb")
    b.ret(c(0, I32))
    return mod, b.fn


def test_valid_function_passes():
    mod, fn = valid_fn()
    verify_function(fn, mod)
    verify_module(mod)


def test_missing_terminator():
    mod = Module("m")
    fn = mod.add_function(__import__("repro.compiler.ir", fromlist=["Function"]).Function("f", [], VOID))
    blk = fn.add_block("entry")
    blk.instrs.append(Instr("add", "%x", I32, (Const(1, I32), Const(2, I32))))
    with pytest.raises(VerifyError, match="terminator"):
        verify_function(fn)


def test_terminator_mid_block():
    mod, fn = valid_fn()
    fn.blocks["a"].instrs.insert(0, Instr("ret", None, VOID, (Const(0, I32),)))
    with pytest.raises(VerifyError, match="mid-block"):
        verify_function(fn)


def test_double_definition():
    mod, fn = valid_fn()
    dup = fn.blocks["a"]
    dup.instrs.insert(0, Instr("add", "%d", I32, (Const(1, I32), Const(1, I32))))
    dup.instrs.insert(1, Instr("add", "%d", I32, (Const(1, I32), Const(1, I32))))
    with pytest.raises(VerifyError, match="defined twice"):
        verify_function(fn)


def test_branch_to_unknown_block():
    mod, fn = valid_fn()
    fn.blocks["a"].instrs[-1] = Instr("jmp", None, VOID, (), target="nope")
    with pytest.raises(VerifyError, match="unknown block"):
        verify_function(fn)


def test_use_of_undefined_register():
    mod, fn = valid_fn()
    fn.blocks["bb"].instrs.insert(0, Instr("add", "%u", I32, ("%ghost", Const(1, I32))))
    with pytest.raises(VerifyError, match="undefined"):
        verify_function(fn)


def test_phi_incoming_mismatch():
    mod, fn = valid_fn()
    # bb has preds {entry, a}; a phi citing only `a` must be rejected
    fn.blocks["bb"].instrs.insert(
        0, Instr("phi", "%p", I32, (), incoming=[("a", Const(1, I32))])
    )
    with pytest.raises(VerifyError, match="phi incoming"):
        verify_function(fn)


def test_phi_after_non_phi():
    mod, fn = valid_fn()
    blk = fn.blocks["bb"]
    blk.instrs.insert(0, Instr("add", "%q", I32, (Const(1, I32), Const(1, I32))))
    blk.instrs.insert(
        1,
        Instr("phi", "%p", I32, (), incoming=[("entry", Const(1, I32)), ("a", Const(2, I32))]),
    )
    with pytest.raises(VerifyError, match="phi after non-phi"):
        verify_function(fn)


def test_use_not_dominated():
    mod = Module("m")
    b = FunctionBuilder(mod, "f", [("x", I32)], I32)
    cond = b.icmp("slt", "x", c(0, I32))
    b.br(cond, "a", "bb")
    b.block("a")
    v = b.add(c(1, I32), c(2, I32))
    b.jmp("bb")
    b.block("bb")
    b.ret(v)  # `v` defined only on the `a` path
    with pytest.raises(VerifyError, match="not dominated"):
        verify_function(b.fn)


def test_use_before_def_in_block():
    mod, fn = valid_fn()
    blk = fn.blocks["a"]
    blk.instrs.insert(0, Instr("add", "%y", I32, ("%z", Const(1, I32))))
    blk.instrs.insert(1, Instr("add", "%z", I32, (Const(1, I32), Const(1, I32))))
    with pytest.raises(VerifyError):
        verify_function(fn)


def test_call_arity_checked_at_module_level():
    mod = Module("m")
    g = FunctionBuilder(mod, "g", [("a", I32)], I32)
    g.ret("a")
    b = FunctionBuilder(mod, "f", [], I32)
    b.emit(Instr("call", "%r", I32, (), callee="g"))
    b.ret("%r")
    with pytest.raises(VerifyError, match="expects"):
        verify_module(mod)


def test_unreachable_blocks_tolerated():
    mod, fn = valid_fn()
    orphan = fn.add_block("orphan")
    # even a structurally odd (but terminated) unreachable block is fine
    orphan.instrs.append(Instr("jmp", None, VOID, (), target="bb"))
    verify_function(fn, mod)
