"""Live streaming: incremental tailing, epoch splicing, and `repro watch`.

Covers the follow-mode reader contract (torn tails unconsumed, byte
offsets as resume tokens), the epoch-aware metrics merge behind resumed
runs, and the RunWatcher/dashboard over finished, killed-style, and
resumed run directories.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.recorder import RunRecorder, read_events, tail_jsonl
from repro.obs.stream import RunWatcher, normalize_epochs, render, watch


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("stream") / "run"
    code = main(
        [
            "tune", "security_sha", "--budget", "12", "--seed", "1",
            "--seq-length", "8", "--trace-out", str(out),
            "--log-level", "warning",
        ]
    )
    assert code == 0
    return out


def _killed_copy(src: Path, dst: Path) -> Path:
    """A killed-style run dir: no result/metrics, torn event tail."""
    shutil.copytree(src, dst)
    (dst / "result.json").unlink()
    (dst / "metrics.json").unlink()
    with open(dst / "events.jsonl", "a") as fh:
        fh.write('{"type": "span", "name": "measure", "ts": 99.0, "depth": 1}\n')
        fh.write('{"type": "span", "name": "tru')  # no newline: torn
    return dst


class TestTailJsonl:
    def test_torn_tail_left_unconsumed(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text('{"a": 1}\n{"b": 2}\n{"c": ')
        records, offset, malformed = tail_jsonl(p)
        assert records == [{"a": 1}, {"b": 2}]
        assert malformed == 0
        # the offset points at the torn line's first byte; completing the
        # line makes the next poll pick it up without re-reading
        with open(p, "a") as fh:
            fh.write('3}\n{"d": 4}\n')
        more, offset2, _ = tail_jsonl(p, offset=offset)
        assert more == [{"c": 3}, {"d": 4}]
        assert offset2 > offset

    def test_complete_but_malformed_line_skipped_and_counted(self, tmp_path):
        p = tmp_path / "x.jsonl"
        p.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        records, _, malformed = tail_jsonl(p)
        assert records == [{"a": 1}, {"b": 2}]
        assert malformed == 1

    def test_missing_file_reads_empty(self, tmp_path):
        records, offset, malformed = tail_jsonl(tmp_path / "nope.jsonl", offset=7)
        assert (records, offset, malformed) == ([], 7, 0)

    def test_read_events_follow_mode(self, tmp_path):
        p = tmp_path / "events.jsonl"
        p.write_text('{"type": "event", "name": "a"}\n')
        events, offset = read_events(p, follow=True)
        assert [e["name"] for e in events] == ["a"]
        with open(p, "a") as fh:
            fh.write('{"type": "event", "name": "b"}\n')
        events, offset2 = read_events(p, follow=True, offset=offset)
        assert [e["name"] for e in events] == ["b"]
        assert offset2 > offset

    def test_follow_agrees_with_plain_read(self, run_dir):
        plain = read_events(run_dir / "events.jsonl")
        followed, _ = read_events(run_dir / "events.jsonl", follow=True)
        assert followed == plain


class TestNormalizeEpochs:
    def test_single_epoch_passthrough(self):
        evs = [
            {"type": "span", "name": "a", "ts": 0.0, "wall": 1.0},
            {"type": "span", "name": "b", "ts": 1.5, "wall": 0.5},
        ]
        assert normalize_epochs(evs) == evs

    def test_resume_splices_monotonic_timeline(self):
        evs = [
            {"type": "span", "name": "a", "ts": 1.0, "wall": 2.0},
            {"type": "event", "name": "resume_epoch", "epoch": 2},
            {"type": "span", "name": "b", "ts": 0.5, "wall": 1.0},
            {"type": "event", "name": "resume_epoch", "epoch": 3},
            {"type": "span", "name": "c", "ts": 0.25, "wall": 0.0},
        ]
        out = normalize_epochs(evs)
        assert [e["name"] for e in out] == ["a", "b", "c"]
        ts = [e["ts"] for e in out]
        assert ts == sorted(ts)
        assert ts[1] == pytest.approx(3.5)  # epoch-1 end (1+2) + 0.5
        assert ts[2] == pytest.approx(4.75)  # epoch-2 end (3+1.5) + 0.25


class TestMergeSnapshots:
    def test_counters_sum_gauges_last_histograms_exact(self):
        a = MetricsRegistry()
        a.counter("n").inc(3)
        a.gauge("g").set(1)
        for v in (1.0, 2.0, 3.0):
            a.histogram("h").observe(v)
        b = MetricsRegistry()
        b.counter("n").inc(4)
        b.gauge("g").set(9)
        for v in (10.0, 20.0):
            b.histogram("h").observe(v)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 7
        assert merged["gauges"]["g"] == 9
        h = merged["histograms"]["h"]
        assert h["count"] == 5
        assert h["sum"] == pytest.approx(36.0)
        assert h["min"] == 1.0 and h["max"] == 20.0
        assert h["mean"] == pytest.approx(36.0 / 5)
        # quantiles come from the larger epoch (a: 3 observations)
        assert h["p50"] == a.histogram("h").quantile(0.5)

    def test_empty_and_missing_sections_tolerated(self):
        merged = merge_snapshots([{}, {"counters": {"x": 1}}, {"counters": {"x": 2}}])
        assert merged["counters"]["x"] == 3


class TestResumeAwareMetrics:
    def test_graceful_resume_merges_epochs(self, tmp_path):
        d = tmp_path / "run"
        rec = RunRecorder(d, manifest={"command": "tune", "program": "p"})
        rec.registry.counter("task.measurements").inc(5)
        rec.write_metrics()
        rec.close()

        rec2 = RunRecorder(d, resume=True)
        assert rec2.epoch == 2
        rec2.registry.counter("task.measurements").inc(7)
        rec2.write_metrics()
        rec2.close()

        m = json.loads((d / "metrics.json").read_text())
        assert m["epoch"] == 2
        assert m["counters"]["task.measurements"] == 7  # this epoch only
        assert len(m["epochs"]) == 1
        assert m["cumulative"]["counters"]["task.measurements"] == 12

    def test_resume_emits_seam_marker(self, tmp_path):
        d = tmp_path / "run"
        RunRecorder(d, manifest={"command": "tune"}).close()
        rec2 = RunRecorder(d, resume=True)
        rec2.close()
        markers = [
            e for e in read_events(d / "events.jsonl")
            if e.get("name") == "resume_epoch"
        ]
        assert len(markers) == 1
        assert markers[0]["epoch"] == 2

    def test_sigkilled_epoch_still_counts(self, tmp_path):
        # a killed first process leaves no metrics.json; the seam-marker
        # trail (here: none) plus the resume itself must still advance
        d = tmp_path / "run"
        rec = RunRecorder(d, manifest={"command": "tune"})
        rec._events_file.flush()
        rec._events_file.close()  # simulate SIGKILL: no close(), no metrics
        rec2 = RunRecorder(d, resume=True)
        assert rec2.epoch == 2
        rec2.write_metrics()
        rec2.close()
        m = json.loads((d / "metrics.json").read_text())
        assert m["epoch"] == 2
        assert "cumulative" in m

        rec3 = RunRecorder(d, resume=True)
        assert rec3.epoch == 3  # counted from the durable marker trail
        rec3.close()


class TestRunWatcher:
    def test_finished_run(self, run_dir):
        state = RunWatcher(run_dir).refresh()
        assert state.finished and not state.interrupted
        assert state.n_measurements == 12
        assert state.budget == 12
        assert state.best_runtime is not None
        assert state.o3_runtime is not None and state.o3_runtime > 0
        assert state.speedup(state.best_runtime) == pytest.approx(
            state.o3_runtime / state.best_runtime
        )
        assert state.counters.get("task.measurements") == 12
        assert state.epoch == 1
        text = render(state)
        assert "FINISHED" in text and "12/12" in text

    def test_killed_run(self, run_dir, tmp_path):
        killed = _killed_copy(run_dir, tmp_path / "killed")
        state = RunWatcher(killed).refresh()
        assert not state.finished
        assert state.n_measurements == 12  # the WAL is the progress truth
        assert state.resumable
        text = render(state)
        assert "resume" in text
        assert "--resume" in text

    def test_incremental_refresh_consumes_only_new_bytes(self, tmp_path):
        d = tmp_path / "live"
        d.mkdir()
        (d / "manifest.json").write_text(
            json.dumps({"command": "tune", "program": "p", "budget": 4})
        )
        watcher = RunWatcher(d)
        st = watcher.refresh()
        assert st.n_measurements == 0 and not st.finished
        assert "WAITING" in render(st)
        with open(d / "wal.jsonl", "w") as fh:
            fh.write(json.dumps({"type": "wal", "schema": "repro.wal/v1"}) + "\n")
            fh.write(json.dumps({"type": "anchor", "o3_runtime": 2.0}) + "\n")
            fh.write(json.dumps({"type": "measure", "n": 1, "value": 1.0}) + "\n")
            fh.write(
                json.dumps(
                    {"type": "slot", "index": 0, "runtime": 1.0, "status": "ok"}
                )
                + "\n"
            )
        st = watcher.refresh()
        assert st.n_measurements == 1
        assert st.o3_runtime == 2.0
        assert st.best_history == [1.0]
        with open(d / "wal.jsonl", "a") as fh:
            fh.write(json.dumps({"type": "measure", "n": 2, "value": 3.0}) + "\n")
            fh.write(
                json.dumps(
                    {"type": "slot", "index": 1, "runtime": 3.0, "status": "crash"}
                )
                + "\n"
            )
        st = watcher.refresh()
        assert st.n_measurements == 2
        assert st.best_history == [1.0, 1.0]  # incumbent keeps the best
        assert st.failures == {"crash": 1}
        render(st)  # renders without crashing mid-flight

    def test_watch_once_and_cli(self, run_dir):
        state = watch(run_dir, once=True, out=lambda s: None)
        assert state.finished
        assert main(["watch", str(run_dir), "--once", "--log-level", "warning"]) == 0

    def test_watch_cli_on_killed_run(self, run_dir, tmp_path):
        killed = _killed_copy(run_dir, tmp_path / "killed-cli")
        assert main(["watch", str(killed), "--once", "--log-level", "warning"]) == 0

    def test_watch_max_frames_bounds_live_run(self, tmp_path):
        d = tmp_path / "never-finishes"
        d.mkdir()
        (d / "manifest.json").write_text(json.dumps({"command": "tune"}))
        frames = []
        state = watch(d, interval=0.01, max_frames=2, out=frames.append)
        assert len(frames) == 2
        assert not state.finished
