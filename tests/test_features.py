"""Tests for the feature extraction layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.opt_tool import run_opt
from repro.features import (
    AUTOPHASE_KEYS,
    StatsVectorizer,
    autophase_features,
    sequence_features,
    sequence_histogram,
    token_histogram,
)
from repro.workloads import cbench_program

from tests.conftest import build_dot_kernel


class TestStatsVectorizer:
    def test_registry_grows(self):
        v = StatsVectorizer()
        v.fit([{"a.X": 1}, {"b.Y": 2}])
        assert v.dim == 2
        v.fit([{"a.X": 1}, {"c.Z": 3}])
        assert v.dim == 3  # keys are never forgotten

    def test_log_scaling_and_clipping(self):
        v = StatsVectorizer()
        X = v.fit([{"a.X": 0}, {"a.X": 9}])
        assert X.min() == pytest.approx(0.0)
        assert X.max() == pytest.approx(1.0)
        t = v.transform({"a.X": 100})  # beyond observed range: clipped
        assert t[0] == pytest.approx(1.0)

    def test_coverage_full_for_seen_values(self):
        v = StatsVectorizer()
        v.fit([{"a.X": 1, "b.Y": 4}, {"a.X": 5}])
        assert v.coverage({"a.X": 3}) == pytest.approx(1.0)

    def test_coverage_penalises_novel_dims(self):
        v = StatsVectorizer()
        v.fit([{"a.X": 1}, {"a.X": 5}])
        cov = v.coverage({"a.X": 3, "new.K": 7})
        assert cov == pytest.approx(0.5)

    def test_coverage_out_of_range_value(self):
        v = StatsVectorizer()
        v.fit([{"a.X": 1}, {"a.X": 5}])
        assert v.coverage({"a.X": 500}) < 1.0

    def test_zero_only_candidate_fully_covered(self):
        v = StatsVectorizer()
        v.fit([{"a.X": 1}])
        assert v.coverage({}) == pytest.approx(1.0)

    def test_signature_ignores_zeros_and_order(self):
        v = StatsVectorizer()
        s1 = v.signature({"a.X": 1, "b.Y": 0, "c.Z": 2})
        s2 = v.signature({"c.Z": 2, "a.X": 1})
        assert s1 == s2

    @given(st.dictionaries(st.sampled_from(["p.A", "p.B", "q.C"]), st.integers(0, 50), max_size=3))
    @settings(deadline=None, max_examples=30)
    def test_transform_stays_in_unit_box(self, stats):
        v = StatsVectorizer()
        v.fit([{"p.A": 3, "p.B": 7, "q.C": 2}, {"p.A": 0}])
        t = v.transform(stats)
        assert (t >= 0).all() and (t <= 1).all()

    # strategy for candidate populations: in-registry keys plus "z.NEW"
    # (never fitted) so the batch paths see the out-of-registry case too
    _populations = st.lists(
        st.dictionaries(
            st.sampled_from(["p.A", "p.B", "q.C", "z.NEW"]),
            st.integers(0, 200),
            max_size=4,
        ),
        min_size=1,
        max_size=6,
    )

    @staticmethod
    def _fitted():
        v = StatsVectorizer()
        v.fit([{"p.A": 3, "p.B": 7, "q.C": 2}, {"p.A": 0, "q.C": 9}])
        return v

    @given(_populations)
    @settings(deadline=None, max_examples=50)
    def test_transform_many_matches_scalar(self, stats_list):
        v = self._fitted()
        batch = v.transform_many(stats_list)
        ref = np.stack([v.transform(s) for s in stats_list])
        assert batch.shape == (len(stats_list), v.fitted_dim)
        assert np.allclose(batch, ref)

    @given(_populations)
    @settings(deadline=None, max_examples=50)
    def test_coverage_many_matches_scalar(self, stats_list):
        v = self._fitted()
        batch = v.coverage_many(stats_list)
        ref = np.array([v.coverage(s) for s in stats_list])
        assert np.allclose(batch, ref)

    def test_batch_paths_aligned_after_registry_growth(self):
        # the registry may grow between fits (observe_keys); both batch
        # paths must keep working against the *fitted* dimensionality,
        # treating post-fit keys as unseen like the scalar paths do
        v = self._fitted()
        v.observe_keys({"late.K": 1})
        assert v.dim > v.fitted_dim
        cands = [{"p.A": 1, "late.K": 5}, {"late.K": 2}, {}]
        batch = v.transform_many(cands)
        assert batch.shape == (3, v.fitted_dim)
        assert np.allclose(batch, np.stack([v.transform(s) for s in cands]))
        cov = v.coverage_many(cands)
        assert np.allclose(cov, [v.coverage(s) for s in cands])
        assert cov[1] == pytest.approx(0.0)  # only an unseen active key
        assert cov[2] == pytest.approx(1.0)  # nothing active at all


class TestAutophase:
    def test_counts_respond_to_compilation(self):
        mod = build_dot_kernel()
        before = autophase_features(mod)
        after = autophase_features(run_opt(mod, ["mem2reg", "instcombine", "dce"]).module)
        assert before["num_load"] > after["num_load"]
        assert before["num_instructions"] > after["num_instructions"]

    def test_keys_stable(self):
        mod = build_dot_kernel()
        feats = autophase_features(mod)
        assert set(feats) == set(AUTOPHASE_KEYS)

    def test_blind_to_function_attrs(self):
        # the deficiency the paper highlights: function-attrs is invisible
        prog = cbench_program("telecom_gsm")
        mod = prog.get_module("long_term")
        plain = autophase_features(run_opt(mod, []).module)
        attred = autophase_features(run_opt(mod, ["function-attrs"]).module)
        assert plain == attred


class TestSequenceFeatures:
    def test_positional_encoding_range(self):
        f = sequence_features([0, 5, 39], 40)
        assert (f > 0).all() and (f < 1).all()
        assert len(f) == 3

    def test_histogram_sums_to_one(self):
        h = sequence_histogram([1, 1, 2, 3], 5)
        assert h.sum() == pytest.approx(1.0)
        assert h[1] == pytest.approx(0.5)


class TestTokens:
    def test_bigrams_counted(self):
        mod = build_dot_kernel()
        hist = token_histogram(mod)
        assert sum(hist.values()) == sum(
            f.num_instrs() - len(f.blocks) for f in mod.functions.values()
        ) + sum(len(f.blocks) - 1 for f in mod.functions.values())
        assert any(k.startswith("bi_load_") for k in hist)
