"""Unit tests for CFG cleanup and loop transformation passes."""

import pytest

from repro.compiler.analysis import find_loops
from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, GlobalVar, I1, I32, I64, Instr, Module, PTR, VOID
from repro.compiler.opt_tool import run_opt
from repro.machine.interp import run_program

from tests.conftest import build_sum_loop_module


def _opcount(mod, op):
    return sum(1 for f in mod.functions.values() for i in f.instructions() if i.op == op)


def _check(mod, seq):
    ref = run_program([mod]).output_signature()
    cr = run_opt(mod, seq, verify_each=True)
    out = run_program([cr.module]).output_signature()
    assert out == ref, f"{seq} changed semantics: {out} vs {ref}"
    return cr


class TestSimplifyCFG:
    def test_removes_unreachable(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.ret(c(0, I32))
        orphan = b.fn.add_block("orphan")
        orphan.instrs.append(Instr("ret", None, VOID, (Const(1, I32),)))
        cr = _check(mod, ["simplifycfg"])
        assert "orphan" not in cr.module.functions["main"].blocks

    def test_merges_linear_chain(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.jmp("b1")
        b.block("b1")
        x = b.add(c(1, I32), c(2, I32))
        b.jmp("b2")
        b.block("b2")
        b.output(x)
        b.ret(x)
        cr = _check(mod, ["simplifycfg"])
        assert len(cr.module.functions["main"].blocks) == 1

    def test_folds_same_target_branch(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [1]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        cond = b.icmp("slt", v, c(5, I32))
        b.br(cond, "t", "t")
        b.block("t")
        b.output(v)
        b.ret(v)
        cr = _check(mod, ["simplifycfg"])
        assert _opcount(cr.module, "br") == 0

    def test_const_branch_folded_and_phi_pruned(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.br(c(1, I1), "t", "f")
        b.block("t")
        b.jmp("merge")
        b.block("f")
        b.jmp("merge")
        b.block("merge")
        p = b.phi(I32, [("t", c(10, I32)), ("f", c(20, I32))])
        b.output(p)
        b.ret(p)
        cr = _check(mod, ["simplifycfg"])
        assert run_program([cr.module]).ret == 10
        assert _opcount(cr.module, "phi") == 0


class TestJumpThreading:
    def test_threads_constant_phi_condition(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [1]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        c0 = b.icmp("slt", v, c(100, I32))
        b.br(c0, "a", "bb")
        b.block("a")
        b.jmp("hub")
        b.block("bb")
        b.jmp("hub")
        b.block("hub")
        cond = b.phi(I1, [("a", c(1, I1)), ("bb", c(0, I1))])
        b.br(cond, "yes", "no")
        b.block("yes")
        b.output(c(111, I32))
        b.ret(c(1, I32))
        b.block("no")
        b.output(c(222, I32))
        b.ret(c(0, I32))
        cr = _check(mod, ["jump-threading"])
        assert cr.stats.get("jump-threading", "NumThreads") >= 1


class TestSink:
    def test_sinks_single_use_into_branch(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [1]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        expensive = b.mul(v, c(1234, I32), I32)  # only used on one arm
        cond = b.icmp("slt", v, c(0, I32))
        b.br(cond, "use", "skip")
        b.block("use")
        b.output(expensive)
        b.ret(c(1, I32))
        b.block("skip")
        b.output(c(0, I32))
        b.ret(c(0, I32))
        cr = _check(mod, ["sink"])
        assert cr.stats.get("sink", "NumSunk") == 1
        fn = cr.module.functions["main"]
        assert any(i.op == "mul" for i in fn.blocks["use"].instrs)


class TestCorrelatedPropagation:
    def test_propagates_eq_constant(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [7]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        cond = b.icmp("eq", v, c(7, I32))
        b.br(cond, "yes", "no")
        b.block("yes")
        out = b.add(v, c(1, I32), I32)  # v is 7 here
        b.output(out)
        b.ret(out)
        b.block("no")
        b.output(v)
        b.ret(v)
        cr = _check(mod, ["correlated-propagation"])
        assert cr.stats.get("correlated-propagation", "NumReplacements") >= 1


class TestLICM:
    def test_hoists_invariant_arith(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [5]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            heavy = bb.mul(v, c(17, I32), I32)  # loop-invariant
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, heavy, I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "licm"])
        assert cr.stats.get("licm", "NumHoisted") >= 1
        # the multiply must now execute once, not 8 times
        r = run_program([cr.module])
        fn = cr.module.functions["main"]
        mul_blocks = [
            bn for bn, blk in fn.blocks.items() if any(i.op == "mul" for i in blk.instrs)
        ]
        loops = find_loops(fn)
        assert loops and all(bn not in loops[0].blocks for bn in mul_blocks)

    def test_load_not_hoisted_when_loop_writes(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [5]))
        b = FunctionBuilder(mod, "main", [], I32)
        gaddr = b.gaddr("g")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            v = bb.load(I32, gaddr)  # NOT invariant: the loop writes g
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, v, I32), acc)
            bb.store(bb.add(v, c(1, I32), I32), gaddr)

        b.counted_loop(c(0, I32), c(4, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        _check(mod, ["mem2reg", "licm"])  # semantics preserved is the test


class TestLoopRotate:
    def test_rotation_preserves_semantics_and_counts(self, sum_loop_module):
        cr = _check(sum_loop_module, ["mem2reg", "loop-rotate", "simplifycfg"])
        assert cr.stats.get("loop-rotate", "NumRotated") == 1
        # rotated form runs fewer blocks per iteration
        r = run_program([cr.module])
        assert r.ret == sum(range(1, 17))

    def test_zero_trip_guard(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        acc = b.alloca(I32)
        b.store(c(42, I32), acc)

        def body(bb, i):
            bb.store(c(0, I32), acc)

        b.counted_loop(c(5, I32), c(5, I32), body)  # zero iterations
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-rotate", "simplifycfg", "sccp", "dce"])
        assert run_program([cr.module]).ret == 42


class TestLoopUnroll:
    def test_full_unroll_removes_loop(self, sum_loop_module):
        cr = _check(sum_loop_module, ["mem2reg", "loop-unroll", "simplifycfg"])
        assert cr.stats.get("loop-unroll", "NumFullyUnrolled") == 1
        fn = cr.module.functions["main"]
        assert not find_loops(fn)
        assert run_program([cr.module]).ret == sum(range(1, 17))

    def test_threshold_blocks_large_loops(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [0] * 4))
        b = FunctionBuilder(mod, "main", [], I32)
        g = b.gaddr("g")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):  # big body so trips*size exceeds the threshold
            cur = bb.load(I32, acc)
            for _ in range(12):
                cur = bb.add(cur, bb.load(I32, bb.gep(g, bb.and_(i, c(3, I32), I32), I32)), I32)
            bb.store(cur, acc)

        b.counted_loop(c(0, I32), c(64, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-unroll"])
        assert cr.stats.get("loop-unroll", "NumFullyUnrolled") == 0

    def test_unroll_requires_mem2reg_first(self, sum_loop_module):
        cr = _check(sum_loop_module, ["loop-unroll"])
        assert cr.stats.get("loop-unroll", "NumFullyUnrolled") == 0


class TestLoopDeletion:
    def test_deletes_dead_loop(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        junk = b.alloca(I32)
        b.store(c(0, I32), junk)

        def body(bb, i):
            v = bb.load(I32, junk)
            bb.store(bb.add(v, c(1, I32), I32), junk)

        b.counted_loop(c(0, I32), c(10, I32), body)
        b.output(c(5, I32))
        b.ret(c(5, I32))
        cr = _check(mod, ["mem2reg", "dce", "loop-deletion", "simplifycfg"])
        assert cr.stats.get("loop-deletion", "NumDeleted") == 1

    def test_keeps_observable_loop(self, sum_loop_module):
        cr = _check(sum_loop_module, ["mem2reg", "loop-deletion"])
        assert cr.stats.get("loop-deletion", "NumDeleted") == 0


class TestLoopIdiom:
    def test_memset_recognised(self):
        mod = Module("m")
        mod.add_global(GlobalVar("buf", I32, [9] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        buf = b.gaddr("buf")

        def body(bb, i):
            bb.store(c(0, I32), bb.gep(buf, i, I32))

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, b.gep(buf, c(7, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-idiom"])
        assert cr.stats.get("loop-idiom", "NumMemSet") == 1
        assert _opcount(cr.module, "memset") == 1
        assert run_program([cr.module]).ret == 0

    def test_memcpy_recognised_for_disjoint_globals(self):
        mod = Module("m")
        mod.add_global(GlobalVar("src", I32, list(range(8))))
        mod.add_global(GlobalVar("dst", I32, [0] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        src, dst = b.gaddr("src"), b.gaddr("dst")

        def body(bb, i):
            bb.store(bb.load(I32, bb.gep(src, i, I32)), bb.gep(dst, i, I32))

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, b.gep(dst, c(5, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-idiom"])
        assert cr.stats.get("loop-idiom", "NumMemCpy") == 1
        assert run_program([cr.module]).ret == 5

    def test_same_base_copy_not_memcpy(self):
        # potential overlap: shifting within one array must NOT become memcpy
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(10))))
        b = FunctionBuilder(mod, "main", [], I32)
        a = b.gaddr("a")
        a1 = b.gep(a, c(1, I64), I32)

        def body(bb, i):
            bb.store(bb.load(I32, bb.gep(a, i, I32)), bb.gep(a1, i, I32))

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, b.gep(a, c(8, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-idiom"])
        assert cr.stats.get("loop-idiom", "NumMemCpy") == 0


class TestIndVars:
    def test_widen_removes_loop_sext(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, list(range(8))))
        b = FunctionBuilder(mod, "main", [], I32)
        g = b.gaddr("g")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            wide = bb.sext(i, I64)
            v = bb.load(I32, bb.gep(g, wide, I32))
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, v, I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "early-cse", "indvars"])
        assert cr.stats.get("indvars", "NumWidened") == 1


class TestLoopUnswitch:
    def test_hoists_invariant_branch(self):
        mod = Module("m")
        mod.add_global(GlobalVar("flag", I32, [1]))
        mod.add_global(GlobalVar("g", I32, list(range(8))))
        b = FunctionBuilder(mod, "main", [], I32)
        fl = b.load(I32, b.gaddr("flag"))
        inv = b.icmp("eq", fl, c(1, I32))
        g = b.gaddr("g")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            slot = bb.alloca(I32)

            def yes(bt):
                bt.store(bt.load(I32, bt.gep(g, i, I32)), slot)

            def no(bt):
                bt.store(c(0, I32), slot)

            bb.if_then(inv, yes, no, tag="sw")
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, bb.load(I32, slot), I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-unswitch", "sccp", "simplifycfg", "dce"])
        assert cr.stats.get("loop-unswitch", "NumBranches") == 1
        assert run_program([cr.module]).ret == sum(range(8))
