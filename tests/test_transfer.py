"""Tests for the cross-program pass-correlation prior (§6.3.2 extension)."""

import numpy as np
import pytest

from repro.core import PassCorrelationPrior
from repro.core.result import Measurement, TuningResult


def _result_with(pass_speedups):
    """Build a synthetic trace: each entry is (sequence_tuple, speedup)."""
    r = TuningResult(program="p", tuner="t", o3_runtime=1.0)
    for i, (seq, sp) in enumerate(pass_speedups):
        r.measurements.append(Measurement(i, "m", tuple(seq), 1.0 / sp, sp))
    return r


class TestPrior:
    def test_learns_positive_association(self):
        prior = PassCorrelationPrior()
        trace = []
        rng = np.random.default_rng(0)
        for _ in range(40):
            if rng.random() < 0.5:
                trace.append((("mem2reg", "slp-vectorizer", "dce"), 1.5 + 0.05 * rng.random()))
            else:
                trace.append((("lcssa", "sink", "dce"), 0.9 + 0.05 * rng.random()))
        prior.observe_run(_result_with(trace))
        scores = prior.scores()
        assert scores["mem2reg"] > scores["lcssa"]
        assert scores["slp-vectorizer"] > scores["sink"]
        assert prior.top_passes(2)[0] in ("mem2reg", "slp-vectorizer")

    def test_weights_are_distribution_and_favour_good(self):
        prior = PassCorrelationPrior()
        prior.observe_run(
            _result_with([(("a",), 2.0), (("a",), 2.1), (("b",), 0.5), (("b",), 0.6)])
        )
        w = prior.pass_weights(["a", "b", "c"])
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1]
        assert w[2] > 0  # unseen pass keeps a floor

    def test_short_runs_ignored(self):
        prior = PassCorrelationPrior()
        prior.observe_run(_result_with([(("a",), 2.0)]))
        assert prior.n_runs == 0

    def test_merge_accumulates(self):
        p1, p2 = PassCorrelationPrior(), PassCorrelationPrior()
        p1.observe_run(_result_with([(("a",), 2.0), (("b",), 0.5)]))
        p2.observe_run(_result_with([(("a",), 1.8), (("b",), 0.6)]))
        p1.merge(p2)
        assert p1.n_runs == 2
        assert p1.scores()["a"] > p1.scores()["b"]

    def test_incorrect_measurements_skipped(self):
        prior = PassCorrelationPrior()
        r = _result_with([(("a",), 2.0), (("b",), 0.5)])
        r.measurements.append(Measurement(2, "m", ("crash",), float("inf"), 0.0, correct=False))
        prior.observe_run(r)
        assert "crash" not in prior.scores()


class TestPriorDrivesGeneration:
    def test_weighted_random_sequences_biased(self):
        from repro.heuristics.random_search import RandomSequenceSearch

        w = np.array([0.7, 0.1, 0.1, 0.1])
        opt = RandomSequenceSearch(16, 4, seed=0, gene_weights=w)
        X = opt.ask(200)
        frac0 = (X == 0).mean()
        assert frac0 > 0.5

    def test_citroen_accepts_prior_end_to_end(self):
        from repro.core import AutotuningTask, Citroen
        from repro.workloads import cbench_program

        donor_task = AutotuningTask(
            cbench_program("telecom_gsm"), platform="arm-a57", seed=0, seq_length=16
        )
        donor = Citroen(donor_task, seed=1, n_init=4, per_strategy=2).tune(10)
        prior = PassCorrelationPrior()
        prior.observe_run(donor)

        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=16
        )
        res = Citroen(task, seed=2, n_init=4, per_strategy=2, pass_prior=prior).tune(10)
        assert len(res.measurements) == 10
