"""Tests for the cross-program pass-correlation prior (§6.3.2 extension)."""

import numpy as np
import pytest

from repro.core import PassCorrelationPrior
from repro.core.result import Measurement, TuningResult


def _result_with(pass_speedups):
    """Build a synthetic trace: each entry is (sequence_tuple, speedup)."""
    r = TuningResult(program="p", tuner="t", o3_runtime=1.0)
    for i, (seq, sp) in enumerate(pass_speedups):
        r.measurements.append(Measurement(i, "m", tuple(seq), 1.0 / sp, sp))
    return r


class TestPrior:
    def test_learns_positive_association(self):
        prior = PassCorrelationPrior()
        trace = []
        rng = np.random.default_rng(0)
        for _ in range(40):
            if rng.random() < 0.5:
                trace.append((("mem2reg", "slp-vectorizer", "dce"), 1.5 + 0.05 * rng.random()))
            else:
                trace.append((("lcssa", "sink", "dce"), 0.9 + 0.05 * rng.random()))
        prior.observe_run(_result_with(trace))
        scores = prior.scores()
        assert scores["mem2reg"] > scores["lcssa"]
        assert scores["slp-vectorizer"] > scores["sink"]
        assert prior.top_passes(2)[0] in ("mem2reg", "slp-vectorizer")

    def test_weights_are_distribution_and_favour_good(self):
        prior = PassCorrelationPrior()
        prior.observe_run(
            _result_with([(("a",), 2.0), (("a",), 2.1), (("b",), 0.5), (("b",), 0.6)])
        )
        w = prior.pass_weights(["a", "b", "c"])
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1]
        assert w[2] > 0  # unseen pass keeps a floor

    def test_short_runs_ignored(self):
        prior = PassCorrelationPrior()
        prior.observe_run(_result_with([(("a",), 2.0)]))
        assert prior.n_runs == 0

    def test_merge_accumulates(self):
        p1, p2 = PassCorrelationPrior(), PassCorrelationPrior()
        p1.observe_run(_result_with([(("a",), 2.0), (("b",), 0.5)]))
        p2.observe_run(_result_with([(("a",), 1.8), (("b",), 0.6)]))
        p1.merge(p2)
        assert p1.n_runs == 2
        assert p1.scores()["a"] > p1.scores()["b"]

    def test_incorrect_measurements_skipped(self):
        prior = PassCorrelationPrior()
        r = _result_with([(("a",), 2.0), (("b",), 0.5)])
        r.measurements.append(Measurement(2, "m", ("crash",), float("inf"), 0.0, correct=False))
        prior.observe_run(r)
        assert "crash" not in prior.scores()


class TestPriorDrivesGeneration:
    def test_weighted_random_sequences_biased(self):
        from repro.heuristics.random_search import RandomSequenceSearch

        w = np.array([0.7, 0.1, 0.1, 0.1])
        opt = RandomSequenceSearch(16, 4, seed=0, gene_weights=w)
        X = opt.ask(200)
        frac0 = (X == 0).mean()
        assert frac0 > 0.5

    def test_citroen_accepts_prior_end_to_end(self):
        from repro.core import AutotuningTask, Citroen
        from repro.workloads import cbench_program

        donor_task = AutotuningTask(
            cbench_program("telecom_gsm"), platform="arm-a57", seed=0, seq_length=16
        )
        donor = Citroen(donor_task, seed=1, n_init=4, per_strategy=2).tune(10)
        prior = PassCorrelationPrior()
        prior.observe_run(donor)

        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=16
        )
        res = Citroen(task, seed=2, n_init=4, per_strategy=2, pass_prior=prior).tune(10)
        assert len(res.measurements) == 10


class TestPriorPersistence:
    def _warm_prior(self):
        prior = PassCorrelationPrior(smoothing=0.5)
        prior.observe_run(
            _result_with([(("a",), 2.0), (("a",), 2.1), (("b",), 0.5), (("b",), 0.6)])
        )
        return prior

    def test_save_load_roundtrip(self, tmp_path):
        prior = self._warm_prior()
        bank = tmp_path / "bank.json"
        prior.save(bank)
        loaded = PassCorrelationPrior.load(bank)
        assert loaded.n_runs == prior.n_runs
        assert loaded.smoothing == prior.smoothing
        assert loaded.scores() == prior.scores()
        assert np.allclose(
            loaded.pass_weights(["a", "b", "c"]), prior.pass_weights(["a", "b", "c"])
        )
        # versioned + atomic: schema tag present, no tmp file left behind
        import json

        assert json.loads(bank.read_text())["schema"] == "repro.pass-prior/v1"
        assert not (tmp_path / "bank.json.tmp").exists()

    def test_missing_bank_is_cold_start(self, tmp_path):
        prior = PassCorrelationPrior.load(tmp_path / "absent.json")
        assert prior.n_runs == 0 and prior.scores() == {}

    def test_corrupt_bank_quarantined_with_warning(self, tmp_path):
        bank = tmp_path / "bank.json"
        bank.write_text('{"schema": "repro.pass-prior/v1", "score": {tor')
        with pytest.warns(UserWarning, match="corrupt pass-prior bank"):
            prior = PassCorrelationPrior.load(bank)
        assert prior.n_runs == 0  # degraded to cold start, not a crash
        assert not bank.exists()
        assert (tmp_path / "bank.json.corrupt").exists()  # evidence kept

    def test_wrong_schema_quarantined(self, tmp_path):
        import json

        bank = tmp_path / "bank.json"
        bank.write_text(json.dumps({"schema": "repro.pass-prior/v999", "n_runs": 3}))
        with pytest.warns(UserWarning, match="corrupt pass-prior bank"):
            prior = PassCorrelationPrior.load(bank)
        assert prior.n_runs == 0
        assert (tmp_path / "bank.json.corrupt").exists()

    def test_save_creates_parent_dirs(self, tmp_path):
        prior = self._warm_prior()
        nested = tmp_path / "a" / "b" / "bank.json"
        prior.save(nested)
        assert PassCorrelationPrior.load(nested).n_runs == 1
