"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bo.acquisition import UpperConfidenceBound
from repro.bo.gp import GaussianProcess
from repro.bo.transforms import YeoJohnson
from repro.compiler.ir import Const, I32, Instr
from repro.machine.cost_model import estimate_cycles, instr_cycles
from repro.machine.platforms import PLATFORMS

_S = dict(deadline=None, max_examples=25,
          suppress_health_check=[HealthCheck.too_slow])


@st.composite
def _dataset(draw):
    seed = draw(st.integers(0, 10**6))
    n = draw(st.integers(5, 30))
    d = draw(st.integers(1, 6))
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(3 * X[:, 0]) + 0.1 * rng.standard_normal(n)
    return X, y


class TestGPProperties:
    @given(_dataset())
    @settings(**_S)
    def test_posterior_variance_bounded_by_prior(self, data):
        X, y = data
        gp = GaussianProcess(X.shape[1], seed=0).fit(X, y, optimize_hypers=False)
        rng = np.random.default_rng(0)
        Q = rng.random((10, X.shape[1]))
        _, sigma = gp.predict(Q)
        prior_sigma = np.sqrt(gp.kernel.variance)
        assert (sigma <= prior_sigma + 1e-6).all()

    @given(_dataset())
    @settings(**_S)
    def test_training_points_have_low_variance(self, data):
        X, y = data
        gp = GaussianProcess(X.shape[1], seed=0).fit(X, y, optimize_hypers=False)
        _, sigma = gp.predict(X)
        rng = np.random.default_rng(1)
        _, sigma_far = gp.predict(rng.random((5, X.shape[1])) + 2.0)
        assert sigma.mean() <= sigma_far.mean() + 1e-9

    @given(_dataset(), st.floats(0.1, 4.0), st.floats(4.1, 16.0))
    @settings(**_S)
    def test_ucb_monotone_in_beta(self, data, beta_lo, beta_hi):
        X, y = data
        gp = GaussianProcess(X.shape[1], seed=0).fit(X, y, optimize_hypers=False)
        rng = np.random.default_rng(2)
        Q = rng.random((8, X.shape[1]))
        lo = UpperConfidenceBound(gp, beta=beta_lo)(Q)
        hi = UpperConfidenceBound(gp, beta=beta_hi)(Q)
        assert (hi >= lo - 1e-9).all()

    @given(st.integers(0, 10**6))
    @settings(**_S)
    def test_fantasize_never_increases_variance_at_fantasy_point(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((12, 3))
        y = X.sum(1)
        gp = GaussianProcess(3, seed=0).fit(X, y, optimize_hypers=False)
        x_new = rng.random(3)
        _, s_before = gp.predict(x_new[None])
        clone = gp.fantasize(x_new, 0.0)
        _, s_after = clone.predict(x_new[None])
        assert s_after[0] <= s_before[0] + 1e-9


class TestTransformProperties:
    @given(st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=4, max_size=40),
           )
    @settings(**_S)
    def test_yeojohnson_roundtrip(self, vals):
        y = np.asarray(vals)
        yj = YeoJohnson()
        z = yj.fit_transform(y)
        back = yj.inverse(z)
        assert np.allclose(back, y, rtol=1e-4, atol=1e-6)


class TestCostModelProperties:
    @given(st.sampled_from(sorted(PLATFORMS)), st.integers(1, 1000))
    @settings(**_S)
    def test_cycles_scale_with_counts(self, platform_name, count):
        from repro.machine.platforms import get_platform
        from tests.conftest import build_sum_loop_module

        plat = get_platform(platform_name)
        mod = build_sum_loop_module()
        fn = mod.functions["main"]
        blk = next(iter(fn.blocks))
        counts1 = {(mod.name, "main", blk): count}
        counts2 = {(mod.name, "main", blk): count * 2}
        c1 = estimate_cycles([mod], counts1, plat)
        c2 = estimate_cycles([mod], counts2, plat)
        assert c1 > 0 and c2 == pytest.approx(2 * c1)

    @given(st.sampled_from(sorted(PLATFORMS)))
    @settings(deadline=None, max_examples=4)
    def test_every_opcode_has_positive_cost(self, platform_name):
        from repro.machine.platforms import get_platform

        plat = get_platform(platform_name)
        for op in ("add", "mul", "load", "store", "sdiv", "fmul", "call", "br"):
            inst = Instr(op, "%x", I32, (Const(1, I32), Const(2, I32)))
            assert instr_cycles(inst, plat) > 0


class TestSequenceOperatorProperties:
    @given(st.integers(0, 10**6), st.integers(2, 40), st.integers(4, 30))
    @settings(**_S)
    def test_crossover_positions_come_from_parents(self, seed, alphabet, length):
        from repro.heuristics.operators import seq_two_point_crossover

        rng = np.random.default_rng(seed)
        p1 = rng.integers(0, alphabet, size=length)
        p2 = rng.integers(0, alphabet, size=length)
        c1, c2 = seq_two_point_crossover(p1, p2, rng)
        for child in (c1, c2):
            ok = (child == p1) | (child == p2)
            assert ok.all()

    @given(st.integers(0, 10**6))
    @settings(**_S)
    def test_weighted_mutation_respects_alphabet(self, seed):
        from repro.heuristics.operators import seq_point_mutation

        rng = np.random.default_rng(seed)
        w = rng.random(10)
        w /= w.sum()
        x = rng.integers(0, 10, size=20)
        y = seq_point_mutation(x, 10, rng, weights=w)
        assert ((y >= 0) & (y < 10)).all()
