"""Tests for the CITROEN core: cost model, task framework, tuner."""

import numpy as np
import pytest

from repro.core import (
    AutotuningTask,
    Citroen,
    CitroenCostModel,
    TuningResult,
    differential_test,
)
from repro.core.generator import CandidateGenerator
from repro.core.result import Measurement
from repro.workloads import cbench_program, spec_program


@pytest.fixture(scope="module")
def gsm_task():
    return AutotuningTask(
        cbench_program("telecom_gsm"), platform="arm-a57", seed=0, seq_length=20
    )


class TestCostModel:
    def _obs(self, nvi, runtime):
        return {"long_term": {"slp-vectorizer.NumVectorInstructions": nvi,
                              "mem2reg.NumPromoted": 3}}, runtime

    def test_needs_two_observations(self):
        m = CitroenCostModel(seed=0)
        m.add_observation(*self._obs(0, 1.0))
        m.fit()
        assert not m.ready

    def test_learns_nvi_speedup_correlation(self):
        rng = np.random.default_rng(0)
        m = CitroenCostModel(seed=0)
        for _ in range(20):
            nvi = int(rng.integers(0, 10))
            runtime = 2.0 - 0.15 * nvi + 0.01 * rng.standard_normal()
            m.add_observation(*self._obs(nvi, runtime))
        m.fit()
        assert m.ready
        mu_hi, _ = m.predict([self._obs(9, 0)[0]])
        mu_lo, _ = m.predict([self._obs(0, 0)[0]])
        assert mu_hi[0] < mu_lo[0]  # more vector instructions -> faster

    def test_relevance_ranks_informative_stat(self):
        rng = np.random.default_rng(0)
        m = CitroenCostModel(seed=0)
        for _ in range(25):
            nvi = int(rng.integers(0, 10))
            noise_stat = int(rng.integers(0, 10))
            per = {"mod": {"slp.NVI": nvi, "noise.X": noise_stat}}
            m.add_observation(per, 2.0 - 0.2 * nvi)
        m.fit()
        top = m.top_statistics(1)
        assert top == ["mod::slp.NVI"]

    def test_coverage_and_signature_delegate(self):
        m = CitroenCostModel(seed=0)
        m.add_observation({"a": {"x.Y": 1}}, 1.0)
        m.add_observation({"a": {"x.Y": 3}}, 2.0)
        m.fit()
        assert m.coverage({"a": {"x.Y": 2}}) == pytest.approx(1.0)
        assert m.coverage({"a": {"new.Z": 5}}) < 1.0
        assert m.signature({"a": {"x.Y": 1}}) == m.signature({"a": {"x.Y": 1, "z.W": 0}})


class TestCandidateGenerator:
    def test_ask_has_provenance_and_dedup(self):
        g = CandidateGenerator(10, 8, seed=0)
        out = g.ask(5)
        assert {name for name, _ in out} <= {"des", "ga", "random"}
        keys = [tuple(seq) for _, seq in out]
        assert len(keys) == len(set(keys))

    def test_seed_incumbent_anchors_des(self):
        g = CandidateGenerator(10, 8, seed=0)
        seed_seq = np.arange(10) % 8
        g.seed_incumbent(seed_seq, 1.0)
        des = g.strategies["des"]
        assert np.array_equal(des.parent, seed_seq)

    def test_tell_updates_all(self):
        g = CandidateGenerator(6, 4, seed=0)
        seq = np.zeros(6, dtype=int)
        g.tell(seq, 0.5)
        for opt in g.strategies.values():
            assert opt.best_y == 0.5


class TestAutotuningTask:
    def test_hot_modules_identified(self, gsm_task):
        assert "long_term" in gsm_task.hot_modules
        assert all(m in [mod.name for mod in gsm_task.program.modules]
                   for m in gsm_task.hot_modules)

    def test_o3_beats_o0(self, gsm_task):
        assert gsm_task.o3_runtime < gsm_task.o0_runtime

    def test_compile_module_returns_stats(self, gsm_task):
        idx = {p: i for i, p in enumerate(gsm_task.passes)}
        seq = [idx["mem2reg"], idx["slp-vectorizer"]] + [idx["dce"]] * 18
        mod, stats = gsm_task.compile_module("long_term", seq)
        assert stats.get("slp-vectorizer.NumVectorInstructions", 0) > 0

    def test_measure_config_and_cache(self, gsm_task):
        before = gsm_task.n_measurements
        cfg = {"long_term": [0] * 20}
        r1, ok1 = gsm_task.measure_config(cfg)
        r2, ok2 = gsm_task.measure_config(cfg)
        assert ok1 and ok2
        assert r1 == r2  # memoised
        assert gsm_task.n_measurements == before + 1

    def test_decode_roundtrip(self, gsm_task):
        seq = list(range(min(5, gsm_task.alphabet)))
        names = gsm_task.decode(seq)
        assert names == [gsm_task.passes[i] for i in seq]

    def test_timing_breakdown_keys(self, gsm_task):
        t = gsm_task.timing_breakdown()
        assert {"compile_seconds", "measure_seconds", "n_compiles", "n_measurements"} <= set(t)


class TestDifferentialTest:
    def test_equivalent_sequences_pass(self):
        prog = cbench_program("security_sha")
        ok, detail = differential_test(prog, {"sha_transform": ["mem2reg", "gvn", "dce"]})
        assert ok, detail

    def test_detects_broken_module(self):
        prog = cbench_program("security_sha")
        # sabotage: swap the outputs by mutilating a cloned module
        import copy

        broken = prog.get_module("sha_transform").clone()
        fn = broken.functions["transform"]
        for inst in fn.instructions():
            if inst.op == "xor":
                inst.op = "and"
        prog2_modules = [broken if m.name == "sha_transform" else m for m in prog.modules]
        from repro.workloads.program import Program

        prog2 = Program("broken", prog2_modules)
        prog2._ref = prog.reference_output()  # reference from the real program
        ok, detail = differential_test(prog2, {})
        assert not ok


class TestCitroen:
    def test_tune_improves_and_records(self, gsm_task):
        tuner = Citroen(gsm_task, seed=3, n_init=5, per_strategy=3)
        res = tuner.tune(25)
        assert len(res.measurements) == 25
        assert res.speedup_over_o3() >= 0.95
        assert res.best_history[-1] <= res.best_history[0]
        assert res.extras["n_incorrect"] == 0
        assert res.best_config  # per-module best sequences reported
        assert res.timing["model_seconds"] >= 0

    def test_speedup_curve_monotone(self, gsm_task):
        tuner = Citroen(gsm_task, seed=4, n_init=5, per_strategy=3)
        res = tuner.tune(20)
        curve = res.speedup_curve([5, 10, 20])
        assert curve[0] <= curve[1] + 1e-12 <= curve[2] + 2e-12

    def test_ablation_configs_construct_and_run(self):
        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=16
        )
        for kw in (
            dict(use_coverage=False),
            dict(use_dedup=False),
            dict(generators=("random",)),
            dict(feature_mode="autophase"),
            dict(feature_mode="seq"),
            dict(feature_mode="tokens"),
            dict(module_policy="round-robin"),
            dict(seed_with_o3=False),
        ):
            res = Citroen(task, seed=1, n_init=4, per_strategy=2, **kw).tune(8)
            assert len(res.measurements) == 8

    def test_unknown_feature_mode_raises(self, gsm_task):
        t = Citroen(gsm_task, seed=0, feature_mode="magic")
        with pytest.raises(KeyError):
            t.tune(6)

    def test_dedup_counter_advances(self, gsm_task):
        tuner = Citroen(gsm_task, seed=5, n_init=5, per_strategy=4)
        res = tuner.tune(15)
        assert res.extras["dedup_hits"] >= 0

    def test_adaptive_allocation_spends_budget_on_modules(self):
        task = AutotuningTask(
            spec_program("525.x264_r"), platform="arm-a57", seed=0, seq_length=16
        )
        tuner = Citroen(task, seed=2, n_init=5, per_strategy=2)
        res = tuner.tune(20)
        modules = set(res.extras["chosen_modules"]) - {"all"}
        assert modules <= set(task.hot_modules)
        assert len(modules) >= 1


class TestTuningResult:
    def test_speedup_at_budget_cut(self):
        r = TuningResult(program="p", tuner="t", o3_runtime=1.0)
        for i, rt in enumerate([2.0, 1.5, 0.5]):
            r.measurements.append(Measurement(i, "m", ("a",), rt, 1.0 / rt))
        assert r.speedup_over_o3(at=1) == pytest.approx(0.5)
        assert r.speedup_over_o3(at=3) == pytest.approx(2.0)
        assert r.speedup_over_o3() == pytest.approx(2.0)


class TestCodeSizeObjective:
    def test_codesize_tuning_beats_oz_ish(self):
        task = AutotuningTask(
            cbench_program("automotive_qsort1"),
            platform="arm-a57",
            seed=0,
            seq_length=16,
            objective="codesize",
        )
        assert task.o3_runtime < task.o0_runtime  # -O3 shrinks code here
        res = Citroen(task, seed=1, n_init=4, per_strategy=3).tune(15)
        assert res.best_runtime <= task.o3_runtime * 1.05
        assert res.extras["n_incorrect"] == 0
        assert all(float(m.runtime).is_integer() for m in res.measurements if m.correct)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            AutotuningTask(cbench_program("security_sha"), objective="energy")
