"""Tests for the plain-text reporting utilities."""

import numpy as np
import pytest

from repro.core.result import Measurement, TuningResult
from repro.reporting import ascii_curve, leaderboard, stats_table, summarize


def _result(name, runtimes, o3=1.0):
    r = TuningResult(program="prog", tuner=name, o3_runtime=o3)
    for i, rt in enumerate(runtimes):
        r.measurements.append(Measurement(i, "m", ("mem2reg",), rt, o3 / rt))
    return r


@pytest.fixture
def results():
    return {
        "citroen": _result("citroen", [2.0, 1.0, 0.5, 0.45]),
        "random": _result("random", [2.0, 1.8, 1.2, 0.9]),
    }


class TestAsciiCurve:
    def test_contains_legend_and_axes(self, results):
        art = ascii_curve(results)
        assert "A = citroen" in art and "B = random" in art
        assert "measurements" in art

    def test_empty(self):
        assert ascii_curve({}) == "(no results)"

    def test_runtime_mode(self, results):
        art = ascii_curve(results, value="runtime")
        assert "A" in art

    def test_flat_series_no_crash(self):
        art = ascii_curve({"x": _result("x", [1.0, 1.0, 1.0])})
        assert "A = x" in art


class TestLeaderboard:
    def test_sorted_descending(self, results):
        board = leaderboard(results)
        lines = board.splitlines()
        assert "citroen" in lines[1]
        assert "random" in lines[2]

    def test_budget_cut(self, results):
        board = leaderboard(results, at=1)  # after one measurement: tie
        assert "0.500x" in board


class TestStatsTable:
    def test_renders_top_k(self):
        rel = [("m::slp.NVI", 3.2), ("m::gvn.N", 1.1), ("m::dce.N", 0.2)]
        table = stats_table(rel, k=2)
        assert "slp.NVI" in table and "dce.N" not in table


class TestSummarize:
    def test_mentions_key_facts(self, results):
        r = results["citroen"]
        r.extras["dedup_hits"] = 7
        r.extras["top_statistics"] = ["m::slp.NVI"]
        text = summarize(r)
        assert "citroen on prog" in text
        assert "4 measurements" in text
        assert "dedup avoided 7" in text
        assert "slp.NVI" in text
