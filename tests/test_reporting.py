"""Tests for the plain-text reporting utilities."""

import numpy as np
import pytest

from repro.core.result import Measurement, TuningResult
from repro.reporting import (
    ascii_curve,
    leaderboard,
    span_table,
    stats_table,
    summarize,
    timeline,
)


def _result(name, runtimes, o3=1.0):
    r = TuningResult(program="prog", tuner=name, o3_runtime=o3)
    for i, rt in enumerate(runtimes):
        r.measurements.append(Measurement(i, "m", ("mem2reg",), rt, o3 / rt))
    return r


@pytest.fixture
def results():
    return {
        "citroen": _result("citroen", [2.0, 1.0, 0.5, 0.45]),
        "random": _result("random", [2.0, 1.8, 1.2, 0.9]),
    }


class TestAsciiCurve:
    def test_contains_legend_and_axes(self, results):
        art = ascii_curve(results)
        assert "A = citroen" in art and "B = random" in art
        assert "measurements" in art

    def test_empty(self):
        assert ascii_curve({}) == "(no results)"

    def test_runtime_mode(self, results):
        art = ascii_curve(results, value="runtime")
        assert "A" in art

    def test_flat_series_no_crash(self):
        art = ascii_curve({"x": _result("x", [1.0, 1.0, 1.0])})
        assert "A = x" in art

    def test_infeasible_inf_entries_do_not_wreck_scale(self):
        # PR 2 records infeasible measurements with runtime == inf; a run
        # whose first slots are infeasible has inf in its best-history
        res = _result("x", [float("inf"), float("inf"), 0.5, 0.4])
        art = ascii_curve({"x": res}, value="speedup")
        assert "A = x" in art
        # the scale comes from the finite points only (speedups 2.0 and
        # 2.5), not from a garbage 0.0 mapped from the inf sentinel
        top_label = float(art.splitlines()[0].split("|")[0])
        assert 2.0 <= top_label <= 3.0

    def test_runtime_mode_with_inf_entries(self):
        res = _result("x", [float("inf"), 1.0, 0.5])
        art = ascii_curve({"x": res}, value="runtime")
        assert "A = x" in art  # no OverflowError, inf rows skipped

    def test_all_infeasible_run(self):
        res = _result("x", [float("inf"), float("inf")])
        assert ascii_curve({"x": res}) == "(no feasible measurements to plot)"


class TestLeaderboard:
    def test_sorted_descending(self, results):
        board = leaderboard(results)
        lines = board.splitlines()
        assert "citroen" in lines[1]
        assert "random" in lines[2]

    def test_budget_cut(self, results):
        board = leaderboard(results, at=1)  # after one measurement: tie
        assert "0.500x" in board


class TestStatsTable:
    def test_renders_top_k(self):
        rel = [("m::slp.NVI", 3.2), ("m::gvn.N", 1.1), ("m::dce.N", 0.2)]
        table = stats_table(rel, k=2)
        assert "slp.NVI" in table and "dce.N" not in table


class TestSpanRendering:
    def _events(self):
        return [
            {"type": "span", "name": "measure", "ts": 0.01, "wall": 0.2,
             "cpu": 0.2, "id": 2, "parent": None, "depth": 0},
            {"type": "span", "name": "compile_batch", "ts": 0.22, "wall": 0.05,
             "cpu": 0.05, "id": 4, "parent": 3, "depth": 1},
            {"type": "span", "name": "propose", "ts": 0.21, "wall": 0.08,
             "cpu": 0.08, "id": 3, "parent": None, "depth": 0},
            {"type": "event", "name": "metrics", "ts": 0.3, "parent": None},
        ]

    def test_span_table_aggregates_and_ranks(self):
        table = span_table(self._events())
        lines = table.splitlines()
        assert "measure" in lines[1]  # largest total first
        assert "compile_batch" in table and "propose" in table
        # % denominator is top-level time only (0.2 + 0.08)
        assert "71.4%" in lines[1]

    def test_span_table_empty(self):
        assert span_table([]) == "(no spans recorded)"

    def test_timeline_orders_rows_chronologically(self):
        tl = timeline(self._events())
        lines = tl.splitlines()
        assert lines[1].lstrip().startswith("0.000s")
        assert "measure" in lines[1] and "propose" in lines[2]
        assert "#" in lines[1]

    def test_timeline_truncates(self):
        events = [
            {"type": "span", "name": f"s{i}", "ts": i * 0.01, "wall": 0.005,
             "cpu": 0.0, "id": i, "parent": None, "depth": 0}
            for i in range(30)
        ]
        tl = timeline(events, max_rows=10)
        assert "(20 more spans)" in tl


class TestSummarize:
    def test_mentions_key_facts(self, results):
        r = results["citroen"]
        r.extras["dedup_hits"] = 7
        r.extras["top_statistics"] = ["m::slp.NVI"]
        text = summarize(r)
        assert "citroen on prog" in text
        assert "4 measurements" in text
        assert "dedup avoided 7" in text
        assert "slp.NVI" in text
