"""The interpreter bench suite: payload shape and the ``repro diff`` gate."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    SCHEMA_INTERP,
    KERNEL_FAMILIES,
    bench_interp_micro,
    diff_bench,
    load_bench,
)


def test_micro_covers_all_families_with_parity():
    rows = bench_interp_micro(iters=200, runs=1)
    assert {r["family"] for r in rows} == set(KERNEL_FAMILIES)
    for row in rows:
        # _time_engines raises on any engine divergence, so reaching here
        # means every family ran bit-identically on all three engines
        assert row["steps"] > 0
        assert row["tree"]["wall"] >= 0.0
        assert row["bytecode"]["wall"] >= 0.0
        assert row["fused"]["wall"] >= 0.0
    vec_row = next(r for r in rows if r["family"] == "vector")
    assert vec_row["vector_instrs"] > 0  # the SLP kernel really vectorized
    for family in ("fused_chain", "fused_wide"):
        frow = next(r for r in rows if r["family"] == family)
        assert frow["fused"]["kernels"] > 0  # fusion really fired


def _interp_payload(bc_wall, multi_wall=None):
    payload = {
        "schema": SCHEMA_INTERP,
        "schema_version": 1,
        "git_rev": "test",
        "e2e": {"engines": {"bytecode": {"wall": bc_wall}}},
    }
    if multi_wall is not None:
        payload["e2e_multi"] = {
            "jobs": {"1": {"wall": multi_wall * 2}, "4": {"wall": multi_wall}}
        }
    return payload


def test_diff_gates_on_bytecode_e2e_wall(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(_interp_payload(1.0)))
    b.write_text(json.dumps(_interp_payload(1.2)))
    verdict = diff_bench(str(a), str(b), max_model_ratio=1.5)
    assert verdict["ok"] and not verdict["regressed"]
    assert verdict["checks"][0]["name"] == "e2e_bytecode_wall_seconds"
    # payloads predating e2e_multi: a skipped, non-gating row
    skipped = verdict["checks"][1]
    assert skipped["name"] == "e2e_multi_wall_seconds" and skipped["skipped"]

    b.write_text(json.dumps(_interp_payload(2.0)))
    verdict = diff_bench(str(a), str(b), max_model_ratio=1.5)
    assert verdict["regressed"]
    assert verdict["regressions"] == ["e2e_bytecode_wall_seconds"]


def test_diff_gates_on_multi_worker_wall(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(_interp_payload(1.0, multi_wall=1.0)))
    b.write_text(json.dumps(_interp_payload(1.0, multi_wall=1.2)))
    verdict = diff_bench(str(a), str(b), max_model_ratio=1.5)
    assert verdict["ok"]
    # gates on the highest jobs level measured by both payloads
    assert verdict["checks"][1]["name"] == "e2e_multi_wall_seconds_jobs4"
    assert not verdict["checks"][1]["skipped"]

    b.write_text(json.dumps(_interp_payload(1.0, multi_wall=2.0)))
    verdict = diff_bench(str(a), str(b), max_model_ratio=1.5)
    assert verdict["regressed"]
    assert verdict["regressions"] == ["e2e_multi_wall_seconds_jobs4"]


def test_diff_rejects_schema_mismatch(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(_interp_payload(1.0)))
    b.write_text(
        json.dumps(
            {
                "schema": SCHEMA,
                "tune": {"fast": {"model_wall_seconds": 1.0}},
            }
        )
    )
    with pytest.raises(ValueError, match="schema mismatch"):
        diff_bench(str(a), str(b))


def test_load_bench_rejects_unknown_schema(tmp_path):
    p = tmp_path / "x.json"
    p.write_text(json.dumps({"schema": "something_else"}))
    with pytest.raises(ValueError, match="not a bench payload"):
        load_bench(str(p))


def test_committed_payload_loads():
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_interp.json")
    payload = load_bench(path)
    assert payload["schema"] == SCHEMA_INTERP
    assert payload["e2e"]["speedup"] >= 3.0
    # the full default path (fusion + memo) clears 2x over raw dispatch
    assert payload["e2e"]["speedup_base"] >= 2.0
    assert payload["e2e_multi"]["histories_identical"] is True
