"""Unit tests for scalar optimisation passes: mem2reg/sroa, instcombine
family, DCE family, GVN family, CFG cleanups."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, GlobalVar, I1, I16, I32, I64, Instr, Module, PTR, VOID
from repro.compiler.opt_tool import run_opt
from repro.compiler.verify import verify_module
from repro.machine.interp import run_program

from tests.conftest import build_sum_loop_module


def _opcount(mod, op):
    return sum(1 for f in mod.functions.values() for i in f.instructions() if i.op == op)


def _check(mod, seq):
    """Run ``seq`` with per-pass verification and semantic equivalence."""
    ref = run_program([mod]).output_signature()
    cr = run_opt(mod, seq, verify_each=True)
    out = run_program([cr.module]).output_signature()
    assert out == ref, f"{seq} changed semantics: {out} vs {ref}"
    return cr


class TestMem2Reg:
    def test_promotes_simple_slot(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(5, I32), p)
        b.output(b.load(I32, p))
        b.ret(b.load(I32, p))
        cr = _check(mod, ["mem2reg"])
        assert _opcount(cr.module, "alloca") == 0
        assert cr.stats.get("mem2reg", "NumPromoted") == 1

    def test_inserts_phi_at_join(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(0, I32), p)
        cond = b.icmp("slt", c(1, I32), c(2, I32))
        b.if_then(cond, lambda bt: bt.store(c(10, I32), p), lambda bt: bt.store(c(20, I32), p))
        out = b.load(I32, p)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg"])
        assert cr.stats.get("mem2reg", "NumPHIInsert") == 1
        assert run_program([cr.module]).ret == 10

    def test_loop_accumulator_becomes_phi(self, sum_loop_module):
        cr = _check(sum_loop_module, ["mem2reg"])
        fn = cr.module.functions["main"]
        assert _opcount(cr.module, "alloca") == 0
        assert any(i.op == "phi" for i in fn.instructions())

    def test_escaped_alloca_not_promoted(self):
        mod = Module("m")
        gfn = FunctionBuilder(mod, "sink_fn", [("p", PTR)], VOID)
        gfn.store(c(9, I32), "p")
        gfn.ret()
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.call("sink_fn", [p])
        out = b.load(I32, p)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg"])
        assert _opcount(cr.module, "alloca") == 1
        assert run_program([cr.module]).ret == 9

    def test_uninitialised_read_becomes_zero(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        out = b.load(I32, p)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg"])
        assert run_program([cr.module]).ret == 0

    def test_single_store_statistic(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(3, I32), p)
        b.output(b.load(I32, p))
        b.ret(c(0, I32))
        cr = _check(mod, ["mem2reg"])
        assert cr.stats.get("mem2reg", "NumSingleStore") == 1


class TestSROA:
    def test_splits_const_indexed_array(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        arr = b.alloca(I32, count=3)
        for i in range(3):
            b.store(c(i * 10, I32), b.gep(arr, c(i, I64), I32))
        out = b.load(I32, b.gep(arr, c(2, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["sroa"])
        assert cr.stats.get("sroa", "NumReplaced") == 1
        assert _opcount(cr.module, "alloca") == 0  # then promoted
        assert run_program([cr.module]).ret == 20

    def test_dynamic_index_blocks_split(self, sum_loop_module):
        # the global array is not an alloca, but add one with dynamic gep
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        arr = b.alloca(I32, count=4)
        idx = b.add(c(1, I32), c(1, I32))
        b.store(c(7, I32), b.gep(arr, idx, I32))
        out = b.load(I32, b.gep(arr, idx, I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["sroa"])
        assert cr.stats.get("sroa", "NumReplaced") == 0


class TestInstCombine:
    def test_constant_folding(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        x = b.add(c(2, I32), c(3, I32))
        y = b.mul(x, c(4, I32), I32)
        b.output(y)
        b.ret(y)
        cr = _check(mod, ["instcombine"])
        assert cr.stats.get("instcombine", "NumConstProp") >= 2

    def test_add_zero_identity(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [41]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        y = b.add(v, c(0, I32), I32)
        b.output(y)
        b.ret(y)
        cr = _check(mod, ["instcombine"])
        assert _opcount(cr.module, "add") == 0

    def test_mul_pow2_becomes_shl(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [5]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        y = b.mul(v, c(8, I32), I32)
        b.output(y)
        b.ret(y)
        cr = _check(mod, ["instcombine"])
        assert _opcount(cr.module, "mul") == 0
        assert _opcount(cr.module, "shl") == 1

    def test_sext_chain_merged(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I16, [-7]))
        b = FunctionBuilder(mod, "main", [], I64)
        v = b.load(I16, b.gaddr("g"))
        w = b.sext(b.sext(v, I32), I64)
        b.output(w)
        b.ret(w)
        cr = _check(mod, ["instcombine", "dce"])
        sexts = [i for f in cr.module.functions.values() for i in f.instructions() if i.op == "sext"]
        assert len(sexts) == 1
        assert run_program([cr.module]).ret == -7

    def test_widening_transform_fires_and_is_sound(self):
        mod = Module("m")
        mod.add_global(GlobalVar("a", I16, [-300]))
        mod.add_global(GlobalVar("bg", I16, [450]))
        b = FunctionBuilder(mod, "main", [], I64)
        av = b.load(I16, b.gaddr("a"))
        bv = b.load(I16, b.gaddr("bg"))
        m = b.mul(b.sext(av, I32), b.sext(bv, I32), I32)
        w = b.sext(m, I64)
        b.output(w)
        b.ret(w)
        cr = _check(mod, ["instcombine", "dce"])
        assert cr.stats.get("instcombine", "NumWidened") == 1
        assert run_program([cr.module]).ret == -300 * 450

    def test_widening_skipped_for_wide_sources(self):
        # i32 x i32 products may overflow: widening must NOT fire
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, [2**30]))
        b = FunctionBuilder(mod, "main", [], I64)
        av = b.load(I32, b.gaddr("a"))
        m = b.mul(av, av, I32)
        w = b.sext(m, I64)
        b.output(w)
        b.ret(w)
        cr = _check(mod, ["instcombine"])
        assert cr.stats.get("instcombine", "NumWidened") == 0

    def test_const_canonicalised_right(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        y = b.add(c(5, I32), v, I32)  # const on the left
        b.output(y)
        b.ret(y)
        cr = _check(mod, ["instcombine"])
        adds = [i for f in cr.module.functions.values() for i in f.instructions() if i.op == "add"]
        assert isinstance(adds[0].args[1], Const)

    def test_icmp_self_folds(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        e = b.icmp("eq", v, v)
        y = b.select(e, c(1, I32), c(0, I32), I32)
        b.output(y)
        b.ret(y)
        cr = _check(mod, ["instcombine"])
        assert run_program([cr.module]).ret == 1
        assert _opcount(cr.module, "icmp") == 0


class TestDivRemPairs:
    def test_recomposes_rem(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [-23]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        q = b.sdiv(v, c(7, I32), I32)
        r = b.srem(v, c(7, I32), I32)
        out = b.add(q, r, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["div-rem-pairs"])
        assert cr.stats.get("div-rem-pairs", "NumRecomposed") == 1
        assert _opcount(cr.module, "srem") == 0


class TestDCE:
    def test_removes_unused_pure(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.add(c(1, I32), c(2, I32))  # dead
        b.mul(c(3, I32), c(4, I32), I32)  # dead
        b.ret(c(0, I32))
        cr = _check(mod, ["dce"])
        assert cr.stats.get("dce", "NumDeleted") == 2

    def test_keeps_stores_and_outputs(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(1, I32), p)
        b.output(c(9, I32))
        b.ret(c(0, I32))
        cr = _check(mod, ["dce"])
        assert _opcount(cr.module, "store") == 1
        assert _opcount(cr.module, "output") == 1

    def test_removes_transitive_webs(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        x = b.add(c(1, I32), c(2, I32))
        y = b.mul(x, c(2, I32), I32)
        b.sub(y, c(1, I32), I32)  # whole chain dead
        b.ret(c(0, I32))
        cr = _check(mod, ["dce"])
        assert cr.stats.get("dce", "NumDeleted") == 3

    def test_adce_removes_dead_private_stores(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(1, I32), p)  # never loaded
        b.ret(c(0, I32))
        cr = _check(mod, ["adce"])
        assert _opcount(cr.module, "store") == 0

    def test_dse_removes_overwritten_store(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(1, I32), p)
        b.store(c(2, I32), p)  # kills the first
        out = b.load(I32, p)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["dse"])
        assert cr.stats.get("dse", "NumFastStores") == 1
        assert run_program([cr.module]).ret == 2

    def test_dse_blocked_by_intervening_load(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(1, I32), p)
        b.output(b.load(I32, p))
        b.store(c(2, I32), p)
        b.output(b.load(I32, p))
        b.ret(c(0, I32))
        cr = _check(mod, ["dse"])
        assert cr.stats.get("dse", "NumFastStores") == 0


class TestGVNFamily:
    def test_early_cse_dedups_in_block(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        a1 = b.add(v, c(1, I32), I32)
        a2 = b.add(v, c(1, I32), I32)
        out = b.mul(a1, a2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["early-cse"])
        assert cr.stats.get("early-cse", "NumCSE") == 1

    def test_early_cse_load_forwarding(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(4, I32), p)
        v1 = b.load(I32, p)  # forwarded from the store
        v2 = b.load(I32, p)  # CSEd with v1
        out = b.add(v1, v2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["early-cse"])
        assert cr.stats.get("early-cse", "NumCSELoad") == 2
        assert run_program([cr.module]).ret == 8

    def test_store_invalidates_other_pointers(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        q = b.alloca(I32)
        b.store(c(1, I32), p)
        v1 = b.load(I32, p)
        b.store(c(2, I32), q)  # conservative aliasing clears memory facts
        v2 = b.load(I32, p)
        out = b.add(v1, v2, I32)
        b.output(out)
        b.ret(out)
        _check(mod, ["early-cse"])  # correctness is the point

    def test_gvn_across_dominating_blocks(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        a1 = b.add(v, c(1, I32), I32)
        b.jmp("next")
        b.block("next")
        a2 = b.add(v, c(1, I32), I32)  # redundant with dominating a1
        out = b.mul(a1, a2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["gvn"])
        assert cr.stats.get("gvn", "NumGVNInstr") == 1

    def test_gvn_respects_scoping(self):
        # expressions in sibling branches must NOT be merged
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        cond = b.icmp("slt", v, c(10, I32))
        p = b.alloca(I32)
        b.if_then(
            cond,
            lambda bt: bt.store(bt.add(v, c(1, I32), I32), p),
            lambda bt: bt.store(bt.add(v, c(1, I32), I32), p),
        )
        out = b.load(I32, p)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["gvn"])
        assert cr.stats.get("gvn", "NumGVNInstr") == 0

    def test_gvn_commutative_canonical(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        mod.add_global(GlobalVar("h", I32, [4]))
        b = FunctionBuilder(mod, "main", [], I32)
        x = b.load(I32, b.gaddr("g"))
        y = b.load(I32, b.gaddr("h"))
        a1 = b.add(x, y, I32)
        a2 = b.add(y, x, I32)  # same value, swapped operands
        out = b.mul(a1, a2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["gvn"])
        assert cr.stats.get("gvn", "NumGVNInstr") == 1

    def test_sccp_folds_constant_branch(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        cond = b.icmp("slt", c(1, I32), c(2, I32))
        b.br(cond, "t", "f")
        b.block("t")
        b.output(c(1, I32))
        b.ret(c(1, I32))
        b.block("f")
        b.output(c(2, I32))
        b.ret(c(2, I32))
        cr = _check(mod, ["sccp"])
        fn = cr.module.functions["main"]
        assert fn.entry.terminator.op == "jmp"


class TestMemCpyOpt:
    def _mod(self):
        from repro.compiler.ir import GlobalVar, Instr

        mod = Module("m")
        mod.add_global(GlobalVar("src", I32, [5, 6, 7, 8]))
        mod.add_global(GlobalVar("dst", I32, [0] * 4))
        b = FunctionBuilder(mod, "main", [], I32)
        return mod, b

    def test_memset_value_forwarded(self):
        from repro.compiler.ir import Instr

        mod, b = self._mod()
        p = b.gaddr("dst")
        b.emit(Instr("memset", None, args=(p, c(9, I32), c(4, I64)), elem_ty=I32))
        out = b.load(I32, b.gep(p, c(2, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["memcpyopt", "dce"])
        assert cr.stats.get("memcpyopt", "NumMemSetInfer") == 1
        assert run_program([cr.module]).ret == 9

    def test_memcpy_load_redirected_to_source(self):
        from repro.compiler.ir import Instr

        mod, b = self._mod()
        src, dst = b.gaddr("src"), b.gaddr("dst")
        b.emit(Instr("memcpy", None, args=(dst, src, c(4, I64)), elem_ty=I32))
        out = b.load(I32, b.gep(dst, c(3, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["memcpyopt"])
        assert cr.stats.get("memcpyopt", "NumMemCpyInstr") == 1
        assert run_program([cr.module]).ret == 8

    def test_intervening_store_blocks_forwarding(self):
        from repro.compiler.ir import Instr

        mod, b = self._mod()
        src, dst = b.gaddr("src"), b.gaddr("dst")
        b.emit(Instr("memcpy", None, args=(dst, src, c(4, I64)), elem_ty=I32))
        b.store(c(99, I32), b.gep(dst, c(3, I64), I32))
        out = b.load(I32, b.gep(dst, c(3, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["memcpyopt"])
        assert cr.stats.get("memcpyopt", "NumMemCpyInstr") == 0
        assert run_program([cr.module]).ret == 99

    def test_out_of_range_offset_untouched(self):
        from repro.compiler.ir import Instr

        mod, b = self._mod()
        src, dst = b.gaddr("src"), b.gaddr("dst")
        b.emit(Instr("memcpy", None, args=(dst, src, c(2, I64)), elem_ty=I32))
        out = b.load(I32, b.gep(dst, c(3, I64), I32))  # beyond the copy
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["memcpyopt"])
        assert cr.stats.get("memcpyopt", "NumMemCpyInstr") == 0

    def test_possible_overlap_not_forwarded(self):
        from repro.compiler.ir import Instr

        mod, b = self._mod()
        a = b.gaddr("src")
        a1 = b.gep(a, c(1, I64), I32)
        b.emit(Instr("memcpy", None, args=(a1, a, c(2, I64)), elem_ty=I32))
        out = b.load(I32, b.gep(a1, c(1, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["memcpyopt"])
        assert cr.stats.get("memcpyopt", "NumMemCpyInstr") == 0

    def test_idiom_then_memcpyopt_chain(self):
        """loop-idiom raises the copy loop to memcpy; memcpyopt then
        redirects the consumer load — a 3-pass enabling chain."""
        from repro.compiler.ir import GlobalVar

        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(8))))
        mod.add_global(GlobalVar("bg", I32, [0] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        a, dstg = b.gaddr("a"), b.gaddr("bg")

        def body(bb, i):
            bb.store(bb.load(I32, bb.gep(a, i, I32)), bb.gep(dstg, i, I32))

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, b.gep(dstg, c(6, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-idiom", "simplifycfg", "memcpyopt"])
        assert cr.stats.get("loop-idiom", "NumMemCpy") == 1
        assert cr.stats.get("memcpyopt", "NumMemCpyInstr") == 1
        assert run_program([cr.module]).ret == 6
