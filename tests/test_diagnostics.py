"""Search-introspection tests: decision records, provenance accounting,
and surrogate-calibration statistics (repro.obs.diagnostics)."""

import math

import numpy as np
import pytest

from repro import AutotuningTask, Citroen, cbench_program
from repro.core.generator import CandidateGenerator, base_strategy
from repro.obs import RunRecorder, Tracer
from repro.obs.diagnostics import (
    attribution_table,
    calibration,
    calibration_table,
    decision_records,
    generator_attribution,
)


def _tiny_task(**kw):
    return AutotuningTask(cbench_program("security_sha"), seed=0, seq_length=8, **kw)


@pytest.fixture(scope="module")
def diagnosed_run():
    """One seeded tune with diagnostics on, traced, shared by the tests."""
    tracer = Tracer()
    with _tiny_task(tracer=tracer) as task:
        tuner = Citroen(task, seed=1)
        result = tuner.tune(16)
    return result, tuner, tracer


class TestBaseStrategy:
    def test_generator_labels_map_to_themselves(self):
        assert base_strategy("des") == "des"
        assert base_strategy("ga") == "ga"
        assert base_strategy("random") == "random"

    def test_novelty_prefix_is_stripped(self):
        assert base_strategy("novel-des") == "des"
        assert base_strategy("novel-random") == "random"

    def test_non_generator_labels_map_to_none(self):
        assert base_strategy("init") is None
        assert base_strategy("random-fallback") is None
        assert base_strategy("") is None
        assert base_strategy(None) is None


class TestDecisionRecords:
    def test_one_record_per_bo_iteration(self, diagnosed_run):
        result, tuner, _ = diagnosed_run
        records = decision_records(result)
        # every measurement after the initial design is one decision
        assert len(records) == len(result.measurements) - tuner.n_init
        indices = [r["measurement"] for r in records]
        assert indices == list(range(tuner.n_init, len(result.measurements)))

    def test_provenance_matches_measurement_history(self, diagnosed_run):
        result, _, _ = diagnosed_run
        winners = result.extras["winner_strategies"]
        for rec in decision_records(result):
            assert rec["provenance"] == winners[rec["measurement"]]
            assert rec["strategy"] == base_strategy(rec["provenance"])

    def test_records_carry_prediction_and_realization(self, diagnosed_run):
        result, _, _ = diagnosed_run
        scored = [
            r for r in decision_records(result) if r["channel"] != "fallback"
        ]
        assert scored, "expected at least one model-driven decision"
        for rec in scored:
            assert math.isfinite(rec["pred_mu"])
            assert rec["pred_sigma"] > 0.0
            assert math.isfinite(rec["acq"])
            assert 0.0 <= rec["coverage"] <= 1.0
            if rec["status"] == "ok":
                assert math.isfinite(rec["realized_z"])
            # the realized runtime mirrors the Measurement it came from
            meas = result.measurements[rec["measurement"]]
            assert rec["runtime"] == meas.runtime
            assert rec["improved"] in (True, False)

    def test_records_flow_to_tracer_events(self, diagnosed_run):
        result, _, tracer = diagnosed_run
        live = decision_records(result)
        via_events = decision_records(tracer)
        assert len(via_events) == len(live)
        assert [r["measurement"] for r in via_events] == [
            r["measurement"] for r in live
        ]

    def test_source_dispatch_none_and_empty(self):
        assert decision_records(None) == []
        assert decision_records([]) == []
        # bare record lists pass through
        rec = {"provenance": "des", "runtime": 1.0}
        assert decision_records([rec]) == [rec]


class TestProvenanceAccounting:
    def test_wins_sum_to_generator_won_measurements(self, diagnosed_run):
        result, tuner, _ = diagnosed_run
        summary = result.extras["provenance"]
        generator_won = [
            w
            for w in result.extras["winner_strategies"]
            if base_strategy(w) is not None
        ]
        assert sum(s["wins"] for s in summary.values()) == len(generator_won)
        for name in ("des", "ga", "random"):
            expected = sum(1 for w in generator_won if base_strategy(w) == name)
            assert summary[name]["wins"] == expected

    def test_proposals_match_decision_record_totals(self, diagnosed_run):
        result, _, _ = diagnosed_run
        summary = result.extras["provenance"]
        proposed = {}
        for rec in decision_records(result):
            for prov, n in rec["proposed"].items():
                proposed[prov] = proposed.get(prov, 0) + n
        # generators also propose during iterations, and only then
        assert {k: v["proposals"] for k, v in summary.items()} == proposed

    def test_improvements_never_exceed_wins(self, diagnosed_run):
        result, _, _ = diagnosed_run
        for counts in result.extras["provenance"].values():
            assert 0 <= counts["improvements"] <= counts["wins"]
            assert counts["wins"] <= counts["proposals"]

    def test_counters_untouched_when_diagnostics_disabled(self):
        with _tiny_task() as task:
            tuner = Citroen(task, seed=1, diagnostics=False)
            result = tuner.tune(12)
        assert "decisions" not in result.extras
        assert "provenance" not in result.extras
        for gen in tuner.generators.values():
            for counts in gen.provenance_stats().values():
                assert counts == {"proposals": 0, "wins": 0, "improvements": 0}
        # and no citroen.* diagnostics metrics were minted (the citroen.gp.*
        # refit/extend counters track the surrogate engine itself and exist
        # whether or not diagnostics are on, like the task.* counters)
        assert not any(
            name.startswith("citroen.") and not name.startswith("citroen.gp.")
            for name in task.metrics.names()
        )

    def test_histories_bit_identical_with_and_without_diagnostics(self):
        def run(diag):
            with _tiny_task() as task:
                return Citroen(task, seed=1, diagnostics=diag).tune(12)

        on, off = run(True), run(False)
        assert [m.runtime for m in on.measurements] == [
            m.runtime for m in off.measurements
        ]
        assert on.best_config == off.best_config

    def test_generator_credit_requires_tracking(self):
        gen = CandidateGenerator(4, 5, seed=0, track_provenance=False)
        gen.ask(3)
        gen.credit_win("des")
        gen.credit_improvement("des")
        assert all(
            c == {"proposals": 0, "wins": 0, "improvements": 0}
            for c in gen.provenance_stats().values()
        )
        tracked = CandidateGenerator(4, 5, seed=0, track_provenance=True)
        out = tracked.ask(3)
        assert sum(
            c["proposals"] for c in tracked.provenance_stats().values()
        ) == len(out)
        tracked.credit_win("novel-ga")
        assert tracked.provenance_stats()["ga"]["wins"] == 1
        tracked.credit_win("random-fallback")  # not a generator label: ignored
        assert sum(c["wins"] for c in tracked.provenance_stats().values()) == 1


class TestCalibration:
    def test_perfect_predictions_have_zero_rmse_full_coverage(self):
        records = [
            {
                "provenance": "des",
                "runtime": 1.0,
                "pred_mu": float(i),
                "pred_sigma": 0.5,
                "realized_z": float(i),
            }
            for i in range(6)
        ]
        cal = calibration(records)
        assert cal["n"] == 6
        assert cal["rmse"] == 0.0
        assert cal["spearman"] == pytest.approx(1.0)
        assert cal["coverage_1s"] == 1.0
        assert cal["coverage_2s"] == 1.0

    def test_known_errors_produce_known_statistics(self):
        # errors of +1 with sigma 0.5: nothing within 1s or 2s, rmse 1
        records = [
            {
                "provenance": "ga",
                "runtime": 1.0,
                "pred_mu": float(i),
                "pred_sigma": 0.4,
                "realized_z": float(i) + 1.0,
            }
            for i in range(4)
        ]
        cal = calibration(records)
        assert cal["rmse"] == pytest.approx(1.0)
        assert cal["coverage_1s"] == 0.0
        assert cal["coverage_2s"] == 0.0
        assert cal["rmse_first_half"] == pytest.approx(1.0)
        assert cal["rmse_second_half"] == pytest.approx(1.0)
        assert cal["drift"] == pytest.approx(0.0)

    def test_anticorrelated_ranking_detected(self):
        records = [
            {
                "provenance": "des",
                "runtime": 1.0,
                "pred_mu": float(i),
                "pred_sigma": 1.0,
                "realized_z": float(-i),
            }
            for i in range(5)
        ]
        assert calibration(records)["spearman"] == pytest.approx(-1.0)

    def test_unscored_records_are_ignored(self):
        records = [
            {"provenance": "des", "runtime": 1.0, "pred_mu": None,
             "pred_sigma": None, "realized_z": None},
            {"provenance": "des", "runtime": float("inf"), "pred_mu": 0.0,
             "pred_sigma": 1.0, "realized_z": None},
        ]
        cal = calibration(records)
        assert cal["n"] == 0
        assert math.isnan(cal["rmse"])

    def test_live_run_is_reasonably_calibrated(self, diagnosed_run):
        result, _, _ = diagnosed_run
        cal = calibration(result)
        assert cal["n"] > 0
        assert math.isfinite(cal["rmse"])
        assert 0.0 <= cal["coverage_1s"] <= cal["coverage_2s"] <= 1.0
        # the statistics-based surrogate should at least rank candidates
        # positively on this seeded workload (the Table 5.1 claim)
        assert cal["spearman"] > 0.0

    def test_tables_render(self, diagnosed_run):
        result, _, _ = diagnosed_run
        cal_text = calibration_table(result)
        assert "rmse" in cal_text and "sigma" in cal_text
        att_text = attribution_table(result)
        for name in ("des", "ga", "random"):
            assert name in att_text
        assert "(no decision records" in calibration_table([])
        assert "(no provenance records" in attribution_table([])


class TestGeneratorAttribution:
    def test_offline_equals_live(self, diagnosed_run, tmp_path):
        result, _, tracer = diagnosed_run
        rec = RunRecorder(tmp_path / "run")
        for event in tracer.events():
            rec.write_event(event)
        rec.close()
        offline = generator_attribution(str(tmp_path / "run"))
        live = generator_attribution(result)
        assert offline == live

    def test_win_rate_definition(self):
        records = [
            {"provenance": "des", "strategy": "des", "runtime": 1.0,
             "proposed": {"des": 4, "ga": 4}, "improved": True},
            {"provenance": "novel-ga", "strategy": "ga", "runtime": 1.0,
             "proposed": {"des": 4, "ga": 4}, "improved": False},
        ]
        att = generator_attribution(records)
        assert att["des"] == {
            "proposals": 8, "wins": 1, "improvements": 1, "win_rate": 1 / 8,
        }
        assert att["ga"]["wins"] == 1
        assert att["ga"]["improvements"] == 0
