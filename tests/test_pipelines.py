"""Tests for pipelines, the opt driver, statistics and the pass manager."""

import pytest

from repro.compiler.opt_tool import CompileResult, available_passes, run_opt
from repro.compiler.pass_manager import PassManager, TargetInfo, registry
from repro.compiler.pipelines import LLVM10_PASSES, PIPELINES, SEARCH_PASSES, pipeline
from repro.compiler.statistics import StatsCollector
from repro.machine.interp import run_program
from repro.machine.platforms import get_platform
from repro.machine.profiler import Profiler
from repro.workloads import cbench_program

from tests.conftest import build_sum_loop_module


class TestStatsCollector:
    def test_bump_and_get(self):
        s = StatsCollector()
        s.bump("p", "X", 3)
        s.bump("p", "X")
        assert s.get("p", "X") == 4
        assert s.get("p", "missing") == 0

    def test_zero_bump_is_noop(self):
        s = StatsCollector()
        s.bump("p", "X", 0)
        assert len(s) == 0

    def test_as_dict_format(self):
        s = StatsCollector()
        s.bump("mem2reg", "NumPromoted", 2)
        assert s.as_dict() == {"mem2reg.NumPromoted": 2}

    def test_to_json_parses(self):
        import json

        s = StatsCollector()
        s.bump("a", "B", 1)
        assert json.loads(s.to_json()) == {"a.B": 1}

    def test_merge(self):
        a, b = StatsCollector(), StatsCollector()
        a.bump("p", "X", 1)
        b.bump("p", "X", 2)
        b.bump("q", "Y", 5)
        a.merge(b)
        assert a.get("p", "X") == 3 and a.get("q", "Y") == 5

    def test_scoped_view(self):
        s = StatsCollector()
        s.scoped("gvn").bump("NumGVNInstr", 7)
        assert s.get("gvn", "NumGVNInstr") == 7


class TestPassManager:
    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            PassManager(["mem2reg", "no-such-pass"])

    def test_repeats_allowed(self, sum_loop_module):
        pm = PassManager(["mem2reg", "dce", "dce", "dce"])
        stats = pm.run(sum_loop_module.clone())
        assert stats.get("mem2reg", "NumPromoted") > 0

    def test_registry_rejects_duplicates(self):
        from repro.compiler.pass_manager import Pass

        class Dup(Pass):
            name = "mem2reg"

        with pytest.raises(ValueError):
            registry.add("mem2reg", Dup)

    def test_target_info_defaults(self):
        t = TargetInfo()
        assert t.vector_bits == 128 and t.min_vector_lanes == 4


class TestPipelines:
    def test_levels_exist(self):
        assert set(PIPELINES) == {"-O0", "-O1", "-O2", "-O3", "-Oz"}
        assert pipeline("-O0") == []
        with pytest.raises(KeyError):
            pipeline("-O4")

    def test_pipeline_returns_copy(self):
        p = pipeline("-O3")
        p.append("dce")
        assert pipeline("-O3") != p or len(pipeline("-O3")) != len(p)

    def test_all_pipeline_passes_registered(self):
        for level, seq in PIPELINES.items():
            for p in seq:
                assert p in registry, f"{level} references unknown pass {p}"

    def test_llvm10_subset(self):
        assert set(LLVM10_PASSES) < set(SEARCH_PASSES)
        assert "loop-unswitch" not in LLVM10_PASSES

    def test_o_levels_monotone_on_programs(self):
        prog = cbench_program("automotive_bitcount")
        plat = get_platform("arm-a57")
        prof = Profiler(plat, seed=0)
        times = {}
        for level in ("-O0", "-O1", "-O2", "-O3"):
            linked, _ = prog.compile(
                {m.name: pipeline(level) for m in prog.modules}, plat.target_info()
            )
            times[level] = prof.measure(linked).cycles
        assert times["-O3"] <= times["-O1"] <= times["-O0"]
        assert times["-O2"] <= times["-O0"]

    def test_oz_reduces_code_size(self):
        prog = cbench_program("automotive_qsort1")
        before = sum(m.num_instrs() for m in prog.modules)
        linked, _ = prog.compile({m.name: pipeline("-Oz") for m in prog.modules})
        after = sum(m.num_instrs() for m in linked)
        assert after < before


class TestOptTool:
    def test_input_module_untouched(self, sum_loop_module):
        n = sum_loop_module.num_instrs()
        run_opt(sum_loop_module, pipeline("-O3"))
        assert sum_loop_module.num_instrs() == n

    def test_stats_json_flat(self, sum_loop_module):
        cr = run_opt(sum_loop_module, ["mem2reg"])
        js = cr.stats_json()
        assert all(isinstance(k, str) and "." in k for k in js)

    def test_available_passes_sorted(self):
        ps = available_passes()
        assert ps == sorted(ps)
        assert len(ps) >= 40

    def test_sequence_recorded(self, sum_loop_module):
        cr = run_opt(sum_loop_module, ["mem2reg", "dce"])
        assert cr.sequence == ["mem2reg", "dce"]
