"""Interpreter semantics tests: the ground truth everything else rests on."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import (
    Const,
    F64,
    GlobalVar,
    I1,
    I8,
    I16,
    I32,
    I64,
    Instr,
    Module,
    PTR,
    vec,
)
from repro.machine.interp import FuelExhausted, InterpError, Interpreter, run_program, _wrap


def _run_expr(build, ret_ty=I32):
    mod = Module("m")
    b = FunctionBuilder(mod, "main", [], ret_ty)
    res = build(b)
    b.ret(res)
    return run_program([mod]).ret


class TestWrap:
    @pytest.mark.parametrize(
        "value,bits,expected",
        [
            (0, 32, 0),
            (2**31 - 1, 32, 2**31 - 1),
            (2**31, 32, -(2**31)),
            (-1, 8, -1),
            (255, 8, -1),
            (256, 8, 0),
            (32768, 16, -32768),
        ],
    )
    def test_wrap(self, value, bits, expected):
        assert _wrap(value, bits) == expected


class TestArithmetic:
    def test_add_wraps_i32(self):
        assert _run_expr(lambda b: b.add(c(2**31 - 1, I32), c(1, I32))) == -(2**31)

    def test_mul_i16_wraps(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I16)
        r = b.mul(c(300, I16), c(300, I16), I16)
        b.ret(r)
        assert run_program([mod]).ret == _wrap(300 * 300, 16)

    def test_sdiv_truncates_toward_zero(self):
        assert _run_expr(lambda b: b.sdiv(c(-7, I32), c(2, I32))) == -3

    def test_srem_sign_follows_dividend(self):
        assert _run_expr(lambda b: b.srem(c(-7, I32), c(2, I32))) == -1
        assert _run_expr(lambda b: b.srem(c(7, I32), c(-2, I32))) == 1

    def test_division_by_zero_traps(self):
        with pytest.raises(InterpError):
            _run_expr(lambda b: b.sdiv(c(1, I32), c(0, I32)))

    def test_shifts(self):
        assert _run_expr(lambda b: b.shl(c(1, I32), c(4, I32))) == 16
        assert _run_expr(lambda b: b.ashr(c(-8, I32), c(1, I32))) == -4
        assert _run_expr(lambda b: b.binop("lshr", c(-1, I32), c(28, I32), I32)) == 15

    def test_bitwise(self):
        assert _run_expr(lambda b: b.and_(c(0b1100, I32), c(0b1010, I32))) == 0b1000
        assert _run_expr(lambda b: b.or_(c(0b1100, I32), c(0b1010, I32))) == 0b1110
        assert _run_expr(lambda b: b.xor(c(0b1100, I32), c(0b1010, I32))) == 0b0110

    def test_float_ops(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], F64)
        r = b.fdiv(b.fmul(c(3.0, F64), c(4.0, F64), F64), c(2.0, F64), F64)
        b.ret(r)
        assert run_program([mod]).ret == pytest.approx(6.0)


class TestCasts:
    def test_sext_preserves_sign(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I64)
        x = b.add(c(-5, I16), c(0, I16), I16)
        b.ret(b.sext(x, I64))
        assert run_program([mod]).ret == -5

    def test_zext_reinterprets_unsigned(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        x = b.add(c(-1, I8), c(0, I8), I8)
        b.ret(b.zext(x, I32))
        assert run_program([mod]).ret == 255

    def test_trunc_wraps(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I8)
        b.ret(b.trunc(c(511, I32), I8))
        assert run_program([mod]).ret == _wrap(511, 8)

    def test_sitofp_fptosi_roundtrip(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        f = b.sitofp(c(-42, I32), F64)
        b.ret(b.fptosi(f, I32))
        assert run_program([mod]).ret == -42


class TestMemoryControl:
    def test_alloca_store_load(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.store(c(99, I32), p)
        b.ret(b.load(I32, p))
        assert run_program([mod]).ret == 99

    def test_uninitialised_memory_reads_zero(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        p = b.alloca(I32)
        b.ret(b.load(I32, p))
        assert run_program([mod]).ret == 0

    def test_gep_scales_by_elem_size(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I16)
        arr = b.alloca(I16, count=4)
        b.store(c(7, I16), b.gep(arr, c(2, I64), I16))
        b.ret(b.load(I16, b.gep(arr, c(2, I64), I16)))
        assert run_program([mod]).ret == 7

    def test_globals_initialised_and_scoped(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [10, 20, 30]))
        b = FunctionBuilder(mod, "main", [], I32)
        g = b.gaddr("g")
        b.ret(b.load(I32, b.gep(g, c(1, I64), I32)))
        assert run_program([mod]).ret == 20

    def test_unknown_global_traps(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        g = b.gaddr("missing")
        b.ret(b.load(I32, g))
        with pytest.raises(InterpError):
            run_program([mod])

    def test_branch_and_phi(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.br(c(1, I1), "t", "f")
        b.block("t")
        b.jmp("merge")
        b.block("f")
        b.jmp("merge")
        b.block("merge")
        p = b.phi(I32, [("t", c(10, I32)), ("f", c(20, I32))])
        b.ret(p)
        assert run_program([mod]).ret == 10

    def test_loop_sums(self, sum_loop_module):
        r = run_program([sum_loop_module])
        assert r.ret == sum(range(1, 17))
        assert r.outputs == [sum(range(1, 17))]

    def test_block_counts_recorded(self, sum_loop_module):
        r = run_program([sum_loop_module])
        body_counts = [
            n for (m, f, blk), n in r.block_counts.items() if "body" in blk
        ]
        assert body_counts == [16]

    def test_fuel_exhaustion(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.jmp("spin")
        b.block("spin")
        b.add(c(0, I32), c(0, I32))  # non-empty block
        b.jmp("spin")
        with pytest.raises(FuelExhausted):
            run_program([mod], fuel=1000)

    def test_select(self):
        assert _run_expr(lambda b: b.select(c(0, I1), c(1, I32), c(2, I32), I32)) == 2

    def test_output_stream_ordering(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        b.output(c(1, I32))
        b.output(c(2, I32))
        b.ret(c(0, I32))
        assert run_program([mod]).outputs == [1, 2]


class TestCalls:
    def test_cross_module_call(self):
        lib = Module("lib")
        lb = FunctionBuilder(lib, "double", [("x", I32)], I32)
        lb.ret(lb.add("x", "x", I32))
        mod = Module("main_mod")
        b = FunctionBuilder(mod, "main", [], I32)
        b.ret(b.call("double", [c(21, I32)], I32))
        assert run_program([mod, lib]).ret == 42

    def test_recursion_depth_guard(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "inf", [], I32)
        b.ret(b.call("inf", [], I32))
        b2 = FunctionBuilder(mod, "main", [], I32)
        b2.ret(b2.call("inf", [], I32))
        with pytest.raises(InterpError):
            run_program([mod])

    def test_arity_mismatch_traps(self):
        mod = Module("m")
        cal = FunctionBuilder(mod, "f", [("a", I32)], I32)
        cal.ret("a")
        b = FunctionBuilder(mod, "main", [], I32)
        b.emit(Instr("call", "%r", I32, (), callee="f"))
        b.ret("%r")
        with pytest.raises(InterpError):
            run_program([mod])


class TestVectorOps:
    def test_vload_vector_add_vstore(self):
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, [1, 2, 3, 4]))
        mod.add_global(GlobalVar("bv", I32, [10, 20, 30, 40]))
        mod.add_global(GlobalVar("out", I32, [0, 0, 0, 0]))
        b = FunctionBuilder(mod, "main", [], I32)
        v4 = vec(I32, 4)
        va = b._emit("vload", v4, (b.gaddr("a"),), elem_ty=I32)
        vb = b._emit("vload", v4, (b.gaddr("bv"),), elem_ty=I32)
        vs = b.binop("add", va, vb, v4)
        b.emit(Instr("vstore", None, args=(vs, b.gaddr("out")), elem_ty=I32))
        b.ret(b.load(I32, b.gep(b.gaddr("out"), c(3, I64), I32)))
        assert run_program([mod]).ret == 44

    def test_reduce_and_broadcast(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        v4 = vec(I32, 4)
        bc = b._emit("broadcast", v4, (c(5, I32),))
        red = b._emit("reduce", I32, (bc,), rop="add")
        b.ret(red)
        assert run_program([mod]).ret == 20

    def test_extract_insert(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "main", [], I32)
        v4 = vec(I32, 4)
        bc = b._emit("broadcast", v4, (c(1, I32),))
        ins = b._emit("insert", v4, (bc, c(9, I32), c(2, I64)))
        ext = b._emit("extract", I32, (ins, c(2, I64)))
        b.ret(ext)
        assert run_program([mod]).ret == 9

    def test_memset_memcpy(self):
        mod = Module("m")
        mod.add_global(GlobalVar("src", I32, [7, 8, 9]))
        mod.add_global(GlobalVar("dst", I32, [0, 0, 0]))
        b = FunctionBuilder(mod, "main", [], I32)
        src, dst = b.gaddr("src"), b.gaddr("dst")
        b.emit(Instr("memcpy", None, args=(dst, src, c(3, I64)), elem_ty=I32))
        b.emit(Instr("memset", None, args=(src, c(0, I32), c(3, I64)), elem_ty=I32))
        total = b.add(b.load(I32, b.gep(dst, c(2, I64), I32)), b.load(I32, src), I32)
        b.ret(total)
        assert run_program([mod]).ret == 9
