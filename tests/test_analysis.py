"""Tests for CFG / dominator / loop analyses."""

import pytest

from repro.compiler.analysis import (
    constant_trip_count,
    dominators,
    escaped_allocas,
    find_loops,
    function_may_read,
    function_may_write,
    has_side_effects,
    immediate_dominators,
    is_pure_instr,
    reachable_blocks,
    rpo_order,
)
from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, I1, I32, I64, Instr, Module, PTR, VOID
from repro.compiler.opt_tool import run_opt


def diamond():
    mod = Module("m")
    b = FunctionBuilder(mod, "f", [("x", I32)], I32)
    cond = b.icmp("slt", "x", c(0, I32))
    b.br(cond, "l", "r")
    b.block("l")
    b.jmp("exit")
    b.block("r")
    b.jmp("exit")
    b.block("exit")
    p = b.phi(I32, [("l", c(1, I32)), ("r", c(2, I32))])
    b.ret(p)
    return mod, b.fn


class TestCFG:
    def test_rpo_starts_at_entry(self):
        _, fn = diamond()
        order = rpo_order(fn)
        assert order[0] == "entry"
        assert order[-1] == "exit"

    def test_reachable_excludes_orphans(self):
        mod, fn = diamond()
        orphan = fn.add_block("orphan")
        orphan.instrs.append(Instr("ret", None, VOID, (Const(0, I32),)))
        assert "orphan" not in reachable_blocks(fn)

    def test_idoms_of_diamond(self):
        _, fn = diamond()
        idom = immediate_dominators(fn)
        assert idom["l"] == "entry"
        assert idom["r"] == "entry"
        assert idom["exit"] == "entry"
        assert idom["entry"] is None

    def test_dominator_sets(self):
        _, fn = diamond()
        doms = dominators(fn)
        assert doms["exit"] == {"entry", "exit"}
        assert doms["l"] == {"entry", "l"}


class TestLoops:
    def test_loop_detection_and_preheader(self, sum_loop_module):
        # promote first so the loop is in canonical phi form
        cr = run_opt(sum_loop_module, ["mem2reg"])
        fn = cr.module.functions["main"]
        loops = find_loops(fn)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.startswith("loop.header")
        assert loop.preheader == "entry"
        assert len(loop.latches) == 1

    def test_constant_trip_count(self, sum_loop_module):
        cr = run_opt(sum_loop_module, ["mem2reg"])
        fn = cr.module.functions["main"]
        loop = find_loops(fn)[0]
        tc = constant_trip_count(fn, loop)
        assert tc is not None
        _iv, start, step, trips = tc
        assert (start, step, trips) == (0, 1, 16)

    def test_non_constant_bound_gives_none(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [("n", I32)], VOID)
        b.counted_loop(c(0, I32), "n", lambda bb, i: None)
        b.ret()
        cr = run_opt(mod, ["mem2reg", "dce"])
        fn = cr.module.functions["f"]
        loops = find_loops(fn)
        assert loops and constant_trip_count(fn, loops[0]) is None

    def test_nested_loop_depths(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], VOID)

        def outer(bb, i):
            bb.counted_loop(c(0, I32), c(3, I32), lambda b2, j: None, tag="inner")

        b.counted_loop(c(0, I32), c(3, I32), outer, tag="outer")
        b.ret()
        cr = run_opt(mod, ["mem2reg"])
        fn = cr.module.functions["f"]
        loops = find_loops(fn)
        depths = sorted(l.depth for l in loops)
        assert depths == [1, 2]


class TestPurity:
    def test_loads_and_stores(self):
        ld = Instr("load", "%x", I32, ("%p",))
        st = Instr("store", None, VOID, (Const(1, I32), "%p"))
        assert not is_pure_instr(ld)  # value depends on memory
        assert not has_side_effects(ld)  # but removable when unused
        assert has_side_effects(st)

    def test_div_by_const_nonzero_is_pure(self):
        good = Instr("sdiv", "%x", I32, ("%a", Const(2, I32)))
        bad = Instr("sdiv", "%x", I32, ("%a", "%b"))
        assert is_pure_instr(good)
        assert not is_pure_instr(bad)
        assert has_side_effects(bad)

    def test_readnone_call_is_pure(self):
        mod = Module("m")
        fb = FunctionBuilder(mod, "g", [("x", I32)], I32)
        fb.ret(fb.add("x", "x", I32))
        call = Instr("call", "%r", I32, (Const(1, I32),), callee="g")
        assert not is_pure_instr(call, mod)
        mod.functions["g"].attrs.add("readnone")
        assert is_pure_instr(call, mod)
        assert not has_side_effects(call, mod)

    def test_function_may_write_transitive(self):
        mod = Module("m")
        w = FunctionBuilder(mod, "writer", [("p", PTR)], VOID)
        w.store(c(1, I32), "p")
        w.ret()
        caller = FunctionBuilder(mod, "outer", [("p", PTR)], VOID)
        caller.call("writer", ["p"])
        caller.ret()
        assert function_may_write(mod.functions["outer"], mod)
        assert not function_may_read(mod.functions["outer"], mod)


class TestEscapes:
    def test_direct_load_store_private(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], I32)
        p = b.alloca(I32)
        b.store(c(1, I32), p)
        b.ret(b.load(I32, p))
        assert escaped_allocas(b.fn) == set()

    def test_passed_to_call_escapes(self):
        mod = Module("m")
        g = FunctionBuilder(mod, "g", [("p", PTR)], VOID)
        g.ret()
        b = FunctionBuilder(mod, "f", [], VOID)
        p = b.alloca(I32)
        b.call("g", [p])
        b.ret()
        assert p in escaped_allocas(b.fn)

    def test_address_stored_escapes(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], VOID)
        p = b.alloca(I32)
        q = b.alloca(PTR)
        b.store(p, q)  # stores the address itself
        b.ret()
        assert p in escaped_allocas(b.fn)

    def test_gep_derived_use_tracked(self):
        mod = Module("m")
        b = FunctionBuilder(mod, "f", [], I32)
        arr = b.alloca(I32, count=4)
        el = b.gep(arr, c(1, I64), I32)
        b.store(c(5, I32), el)
        b.ret(b.load(I32, el))
        assert escaped_allocas(b.fn) == set()
