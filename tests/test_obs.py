"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
import time

import pytest

from repro import AutotuningTask, Citroen, cbench_program
from repro.cli import main
from repro.core.eval_engine import CompileEngine
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    RunRecorder,
    Tracer,
    configure_logging,
    read_events,
)
from repro.obs.log import _StdoutHandler
from repro.reporting import span_table, timeline


def _tiny_task(**kw):
    return AutotuningTask(cbench_program("security_sha"), seed=0, seq_length=8, **kw)


class TestTracer:
    def test_span_nesting_and_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans()  # inner finishes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["depth"] == 0 and outer["parent"] is None
        assert inner["depth"] == 1 and inner["parent"] == outer["id"]
        assert outer["attrs"] == {"kind": "test"}

    def test_timing_monotonicity(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        inner, outer = tracer.spans()
        assert 0.0 <= inner["wall"] <= outer["wall"]
        assert outer["ts"] <= inner["ts"]  # parent starts first
        assert inner["cpu"] >= 0.0 and outer["cpu"] >= 0.0

    def test_sibling_spans_do_not_nest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a["depth"] == b["depth"] == 0
        assert b["ts"] >= a["ts"]

    def test_set_attaches_attrs_mid_span(self):
        tracer = Tracer()
        with tracer.span("s") as sp:
            sp.set(candidates=7)
        assert tracer.spans()[0]["attrs"]["candidates"] == 7

    def test_point_events_carry_parent(self):
        tracer = Tracer()
        with tracer.span("phase"):
            tracer.event("tick", n=1)
        tick = [e for e in tracer.events() if e["type"] == "event"][0]
        assert tick["name"] == "tick" and tick["attrs"] == {"n": 1}
        assert tick["parent"] == tracer.spans()[0]["id"]

    def test_error_spans_are_flagged(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.spans()[0]["error"] == "ValueError"

    def test_disabled_tracer_records_nothing(self):
        assert NULL_TRACER.events() == []
        with NULL_TRACER.span("x") as sp:
            sp.set(a=1)  # no-op, no crash
        NULL_TRACER.event("y")
        assert NULL_TRACER.events() == []

    def test_retention_is_bounded(self):
        tracer = Tracer(keep=5)
        for i in range(20):
            with tracer.span(f"s{i}"):
                pass
        events = tracer.events()
        assert len(events) == 5
        assert events[-1]["name"] == "s19"


class TestHistogram:
    def test_exact_stats_small_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0, 100.0]:
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(110.0)
        assert h.min == 1.0 and h.max == 100.0
        assert h.quantile(0.0) == 1.0 and h.quantile(1.0) == 100.0

    def test_quantile_bounds_and_ordering(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert h.min <= p50 <= p90 <= p99 <= h.max
        assert p50 == pytest.approx(50.0, abs=2.0)
        assert p90 == pytest.approx(90.0, abs=2.0)

    def test_decimation_keeps_exact_count_and_bounded_memory(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", max_samples=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) < 64
        assert h.min == 0.0 and h.max == 9999.0
        assert 0.0 <= h.quantile(0.5) <= 9999.0
        # the decimated subsample is evenly spread, so p50 is still central
        assert h.quantile(0.5) == pytest.approx(5000.0, rel=0.25)

    def test_bad_quantile_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_and_type_conflicts(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert reg.counter("x") is c
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert set(snap["histograms"]["h"]) >= {"p50", "p90", "p99", "mean"}
        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_registry_pickles_across_process_boundary(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.0)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("c").value == 2
        clone.counter("c").inc()  # lock was re-created


class TestEngineMetrics:
    def test_stats_reads_from_registry_with_legacy_keys(self):
        reg = MetricsRegistry()
        eng = CompileEngine(lambda n, s: (n, tuple(s)), metrics=reg)
        eng.compile_batch([("m", (1, 2)), ("m", (1, 2)), ("m", (3,))])
        stats = eng.stats()
        assert stats["n_compiles"] == 2
        assert stats["cache_hits"] == 1 and stats["cache_misses"] == 2
        # the same numbers live in the shared registry
        snap = reg.snapshot()
        assert snap["counters"]["engine.compiles"] == 2
        assert snap["counters"]["engine.cache_hits"] == 1
        assert snap["histograms"]["engine.compile_seconds"]["count"] == 2
        # legacy attribute counters are registry-backed properties
        assert eng.n_compiles == 2 and eng.hits == 1 and eng.misses == 2

    def test_engine_emits_compile_batch_spans(self):
        tracer = Tracer()
        eng = CompileEngine(lambda n, s: (n, tuple(s)), tracer=tracer)
        eng.compile_batch([("m", (1,)), ("m", (1,)), ("m", (2,))])
        (span,) = tracer.spans()
        assert span["name"] == "compile_batch"
        assert span["attrs"]["size"] == 3
        assert span["attrs"]["compiles"] == 2
        assert span["attrs"]["cache_hits"] == 1
        assert span["attrs"]["failures"] == 0

    def test_failure_counters_flow_to_span_attrs(self):
        def flaky(name, seq):
            raise RuntimeError("nope")

        tracer = Tracer()
        eng = CompileEngine(flaky, max_retries=1, retry_backoff=0.0, tracer=tracer)
        out = eng.compile_batch([("m", (1,))], outcomes=True)[0]
        assert out.status == "error"
        attrs = tracer.spans()[0]["attrs"]
        assert attrs["failures"] == 1 and attrs["retries"] == 1


class TestRunRecorder:
    def test_jsonl_round_trip(self, tmp_path):
        with RunRecorder(tmp_path / "run", manifest={"seed": 3}) as rec:
            with rec.tracer.span("phase", module="m0"):
                rec.tracer.event("tick", value=float("inf"))
        events = read_events(tmp_path / "run" / "events.jsonl")
        # close() appends the recorder's own self-accounting span last
        assert [e["name"] for e in events] == ["tick", "phase", "obs.overhead"]
        assert events[1]["attrs"] == {"module": "m0"}
        assert events[0]["attrs"]["value"] == "inf"  # non-finite stringified

    def test_manifest_determinism_under_fixed_seed(self, tmp_path):
        manifest = {"program": "security_sha", "seed": 7, "budget": 10}
        RunRecorder(tmp_path / "a", manifest=manifest).close()
        RunRecorder(tmp_path / "b", manifest=manifest).close()
        a = (tmp_path / "a" / "manifest.json").read_bytes()
        b = (tmp_path / "b" / "manifest.json").read_bytes()
        assert a == b
        parsed = json.loads(a)
        assert parsed["seed"] == 7 and "git_rev" in parsed and "version" in parsed

    def test_metrics_written_on_close(self, tmp_path):
        rec = RunRecorder(tmp_path / "run", manifest={})
        rec.registry.counter("c").inc(5)
        rec.close()
        snap = json.loads((tmp_path / "run" / "metrics.json").read_text())
        assert snap["counters"]["c"] == 5

    def test_write_result_serialises_tuning_result(self, tmp_path):
        with _tiny_task() as task:
            res = Citroen(task, seed=1).tune(4)
        with RunRecorder(tmp_path / "run", manifest={}) as rec:
            rec.write_result(res)
        payload = json.loads((tmp_path / "run" / "result.json").read_text())
        assert payload["n_measurements"] == 4
        assert len(payload["measurements"]) == 4
        assert payload["best_runtime"] > 0


class TestInstrumentedTune:
    def test_traced_run_reconstructs_phase_timeline(self, tmp_path):
        rec = RunRecorder(tmp_path / "run", manifest={"seed": 1})
        with _tiny_task(tracer=rec.tracer, metrics=rec.registry) as task:
            Citroen(task, seed=1).tune(14)
        rec.close()
        events = read_events(tmp_path / "run" / "events.jsonl")
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"init", "fit", "propose", "candidate_gen", "featurize",
                "acquisition", "compile_batch", "measure"} <= names
        batch = next(
            e for e in events
            if e["type"] == "span" and e["name"] == "compile_batch"
        )
        assert {"cache_hits", "cache_misses", "failures", "timeouts",
                "queue_wait_seconds"} <= set(batch["attrs"])
        table = span_table(events)
        assert "measure" in table and "compile_batch" in table
        tl = timeline(events)
        assert "#" in tl and "propose" in tl

    def test_tracing_does_not_change_tuner_history(self):
        def run(**kw):
            with _tiny_task(**kw) as task:
                return Citroen(task, seed=1).tune(12)

        plain = run()
        traced = run(tracer=Tracer(), metrics=MetricsRegistry())
        assert [m.runtime for m in plain.measurements] == [
            m.runtime for m in traced.measurements
        ]
        assert plain.best_config == traced.best_config

    def test_metrics_every_emits_snapshot_events(self):
        tracer = Tracer()
        with _tiny_task(tracer=tracer, metrics_every=2) as task:
            Citroen(task, seed=1).tune(6)
        snaps = [e for e in tracer.events() if e["name"] == "metrics"]
        assert len(snaps) == 3  # every 2nd of 6 measurements
        assert snaps[-1]["attrs"]["n_measurements"] == 6
        assert "engine.compiles" in snaps[-1]["attrs"]["metrics"]

    def test_tracer_overhead_below_5_percent_of_tiny_tune(self):
        # per-span cost, microbenchmarked on an enabled retaining tracer
        bench = Tracer()
        n = 2000
        t0 = time.perf_counter()
        for _ in range(n):
            with bench.span("x"):
                pass
        per_span = (time.perf_counter() - t0) / n

        # a traced tiny tune: how many spans did it emit, how long did it run
        tracer = Tracer()
        t0 = time.perf_counter()
        with _tiny_task(tracer=tracer) as task:
            Citroen(task, seed=1).tune(10)
        tune_wall = time.perf_counter() - t0
        n_spans = len(tracer.events())
        assert n_spans > 10
        assert per_span * n_spans < 0.05 * tune_wall, (
            f"tracing {n_spans} spans at {per_span * 1e6:.1f}us each is "
            f">=5% of a {tune_wall:.3f}s tune"
        )


class TestLogging:
    def test_info_is_print_compatible(self, capsys):
        log = configure_logging("info")
        log.info("hello      : world")
        assert capsys.readouterr().out == "hello      : world\n"

    def test_configure_is_idempotent(self):
        log = configure_logging("info")
        configure_logging("debug")
        configure_logging("info")
        handlers = [h for h in log.handlers if isinstance(h, _StdoutHandler)]
        assert len(handlers) == 1

    def test_warning_level_silences_info(self, capsys):
        log = configure_logging("warning")
        try:
            log.info("should not appear")
            assert capsys.readouterr().out == ""
        finally:
            configure_logging("info")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("verbose")


class TestCliTracing:
    def test_trace_out_smoke(self, tmp_path, capsys):
        out = tmp_path / "run"
        rc = main([
            "tune", "security_sha", "--budget", "5", "--seed", "1",
            "--seq-length", "8", "--trace-out", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "speedup/-O3" in text
        assert "where did the time go" in text
        for artifact in ("manifest.json", "events.jsonl", "metrics.json",
                         "result.json"):
            assert (out / artifact).exists(), artifact
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["program"] == "security_sha"
        assert manifest["seed"] == 1 and manifest["tuner"] == "citroen"
        events = read_events(out / "events.jsonl")
        assert any(e["name"] == "measure" for e in events)
        metrics = json.loads((out / "metrics.json").read_text())
        assert metrics["counters"]["task.measurements"] == 5

    def test_repro_trace_env_arms_recording(self, tmp_path, capsys, monkeypatch):
        out = tmp_path / "envrun"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        rc = main([
            "tune", "security_sha", "--budget", "4", "--seed", "1",
            "--seq-length", "8",
        ])
        assert rc == 0
        assert (out / "events.jsonl").exists()

    def test_compare_trace_out_writes_per_tuner_dirs(self, tmp_path, capsys):
        out = tmp_path / "cmp"
        rc = main([
            "compare", "security_sha", "--tuners", "random,ga",
            "--budget", "4", "--trace-out", str(out),
        ])
        assert rc == 0
        assert (out / "random" / "events.jsonl").exists()
        assert (out / "ga" / "events.jsonl").exists()

    def test_log_level_warning_silences_report(self, capsys):
        rc = main([
            "tune", "security_sha", "--budget", "4", "--seed", "1",
            "--seq-length", "8", "--log-level", "warning",
        ])
        try:
            assert rc == 0
            assert capsys.readouterr().out == ""
        finally:
            configure_logging("info")
