"""Bytecode VM parity, interpreter semantics fixes, and engine wiring.

Three concerns:

* the flat register VM is a bit-identical drop-in for the tree walker
  (signatures, block counts, step totals, and error behaviour — including
  fuel exhaustion mid-block);
* the signed/unsigned comparison fixes (unsigned ``icmp`` predicates use
  two's-complement reinterpretation at the operand width; ``fcmp`` is
  NaN-aware and rejects unsigned predicates) hold on *both* engines;
* the profiler/task wiring (engine selection, bytecode cache, batch
  measurement) is RNG-transparent: tuner histories do not depend on the
  engine.
"""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import F64, I8, I16, I32, I64, Module, vec
from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import pipeline
from repro.machine.bytecode import BytecodeVM, compile_module, run_bytecode
from repro.machine.interp import (
    FuelExhausted,
    Interpreter,
    InterpError,
    _fcmp,
    _icmp,
    _scalar_bits,
    run_program,
)
from repro.machine.platforms import get_platform
from repro.machine.profiler import Profiler
from repro.workloads import cbench_program

from tests.conftest import build_dot_kernel, build_sum_loop_module


def _outcome(runner, modules, entry="main", fuel=2_000_000):
    try:
        res = runner(modules, entry, fuel=fuel)
    except FuelExhausted as exc:
        return ("fuel", str(exc))
    except InterpError as exc:
        return ("err", str(exc))
    except KeyError as exc:
        return ("key", str(exc))
    return ("ok", res.output_signature(), dict(res.block_counts), res.steps)


def _assert_parity(modules, entry="main", fuel=2_000_000):
    tree = _outcome(run_program, modules, entry, fuel)
    bc = _outcome(run_bytecode, modules, entry, fuel)
    assert tree == bc


# ---------------------------------------------------------------------------
# parity on real workloads
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["telecom_gsm", "security_sha", "telecom_adpcm_c"])
@pytest.mark.parametrize("level", ["-O0", "-O3"])
def test_cbench_parity(name, level):
    prog = cbench_program(name)
    if level == "-O0":
        modules = list(prog.modules)
    else:
        seq = pipeline(level)
        modules = [run_opt(m, seq).module for m in prog.modules]
    _assert_parity(modules, prog.entry, prog.fuel)


def test_kernel_parity(dot_module, sum_loop_module):
    _assert_parity([dot_module])
    _assert_parity([sum_loop_module])


def test_fuel_sweep_exact_parity():
    """Careful-mode replay: every fuel value gives the identical outcome
    (including the exact trip point and error message) on both engines."""
    mod = build_sum_loop_module(n=8)
    full = run_program([mod], fuel=10_000).steps
    for fuel in range(full + 2):
        _assert_parity([mod], fuel=fuel)


def test_fuel_exhausted_is_interp_error():
    mod = build_sum_loop_module(n=8)
    with pytest.raises(InterpError):
        run_bytecode([mod], fuel=3)
    with pytest.raises(FuelExhausted):
        run_bytecode([mod], fuel=3)


# ---------------------------------------------------------------------------
# unsigned icmp semantics (the signedness bugfix)
# ---------------------------------------------------------------------------

def test_icmp_unsigned_negative_operands():
    # -1 reinterprets as the max unsigned value at the operand width
    assert _icmp("ult", -1, 1, 32) is False
    assert _icmp("ugt", -1, 1, 32) is True
    assert _icmp("uge", -1, 0, 8) is True
    assert _icmp("ule", -1, 255, 8) is True   # 0xFF <= 255
    assert _icmp("ugt", -1, 255, 8) is False
    assert _icmp("ult", 0, -1, 64) is True
    # signed predicates are untouched
    assert _icmp("slt", -1, 1, 32) is True
    assert _icmp("sgt", -1, 1, 32) is False


def test_icmp_unsigned_width_dependence():
    # -1 reinterprets to 0xFFFF at 16 bits but only 0xFF at 8 bits
    assert _icmp("ugt", -1, 0xFE, 16) is True
    assert _icmp("ugt", -1, 0xFE, 8) is True
    assert _icmp("ugt", -1, 0xFFFE, 16) is True
    assert _icmp("ult", -2, -1, 8) is True      # 0xFE < 0xFF
    assert _icmp("ult", -128, 127, 8) is False  # 0x80 > 0x7F


def test_icmp_unsigned_vectors():
    assert _icmp("ult", (-1, 2), (1, 3), 16) is False  # lane 0: 0xFFFF > 1
    assert _icmp("ult", (0, 2), (1, 3), 16) is True


@pytest.mark.parametrize("ty,width", [(I8, 8), (I16, 16), (I32, 32), (I64, 64)])
@pytest.mark.parametrize("pred", ["ult", "ule", "ugt", "uge"])
def test_icmp_unsigned_end_to_end(ty, width, pred):
    """Negative operand through real IR: both engines agree with the
    unsigned reinterpretation at the operand width."""
    mod = Module("m_unsigned")
    b = FunctionBuilder(mod, "main", [], I32)
    neg = b.sub(c(0, ty), c(1, ty), ty)  # -1 at this width
    cmp = b.icmp(pred, neg, c(5, ty))
    out = b.zext(cmp, I32) if ty.bits != 32 else b.select(cmp, c(1, I32), c(0, I32), I32)
    b.output(out)
    b.ret(out)

    unsigned_neg = (1 << width) - 1
    expected = {
        "ult": unsigned_neg < 5,
        "ule": unsigned_neg <= 5,
        "ugt": unsigned_neg > 5,
        "uge": unsigned_neg >= 5,
    }[pred]
    tree = run_program([mod])
    bc = run_bytecode([mod])
    assert tree.output_signature() == bc.output_signature()
    assert tree.outputs[-1] == int(expected)


def test_icmp_unknown_predicate_raises():
    with pytest.raises(InterpError, match="unknown predicate"):
        _icmp("weird", 1, 2, 32)


# ---------------------------------------------------------------------------
# fcmp semantics (NaN handling + predicate validation)
# ---------------------------------------------------------------------------

def test_fcmp_nan_is_false_for_all_preds():
    nan = float("nan")
    for pred in ("eq", "ne", "slt", "sle", "sgt", "sge"):
        assert _fcmp(pred, nan, 1.0) is False
        assert _fcmp(pred, 1.0, nan) is False
        assert _fcmp(pred, nan, nan) is False


def test_fcmp_ordinary_compares():
    assert _fcmp("slt", 1.0, 2.0) is True
    assert _fcmp("ne", 1.0, 2.0) is True
    assert _fcmp("eq", 2.0, 2.0) is True
    assert _fcmp("sge", 2.0, 2.0) is True


def test_fcmp_rejects_unsigned_predicates():
    with pytest.raises(InterpError, match="fcmp does not support predicate"):
        _fcmp("ult", 1.0, 2.0)
    # even with NaN operands the predicate error wins
    with pytest.raises(InterpError, match="fcmp does not support predicate"):
        _fcmp("ult", float("nan"), 2.0)
    with pytest.raises(InterpError, match="unknown predicate"):
        _fcmp("bogus", 1.0, 2.0)


def _fcmp_module(pred, a_val, b_val):
    mod = Module("m_fcmp")
    b = FunctionBuilder(mod, "main", [], I32)
    x = b.fdiv(c(a_val, F64), c(1.0, F64), F64)
    y = b.fdiv(c(b_val, F64), c(1.0, F64), F64)
    r = b.select(b.fcmp(pred, x, y), c(1, I32), c(0, I32), I32)
    b.output(r)
    b.ret(r)
    return mod


def test_fcmp_nan_end_to_end_both_engines():
    nan = float("nan")
    for pred in ("eq", "ne", "slt", "sge"):
        mod = _fcmp_module(pred, nan, 1.0)
        tree = run_program([mod])
        bc = run_bytecode([mod])
        assert tree.outputs[-1] == 0
        assert tree.output_signature() == bc.output_signature()


def test_fcmp_unsigned_pred_end_to_end_both_engines():
    mod = _fcmp_module("ugt", 1.0, 2.0)
    t = _outcome(run_program, [mod])
    b = _outcome(run_bytecode, [mod])
    assert t == b
    assert t[0] == "err" and "fcmp does not support predicate" in t[1]


# ---------------------------------------------------------------------------
# bits-cache keying and vector widths
# ---------------------------------------------------------------------------

def test_scalar_bits_vector_uses_element_width():
    assert _scalar_bits(vec(I16, 4)) == 16
    assert _scalar_bits(vec(I8, 8)) == 8
    assert _scalar_bits(I32) == 32
    assert _scalar_bits(None) == 64


def test_bits_cache_keyed_by_module_and_function():
    """The width-map cache is keyed by (module name, function name), not
    ``id(fn)`` — id keys can alias once a function object is collected."""
    mod = Module("mwidth")
    b = FunctionBuilder(mod, "main", [], I32)
    neg = b.sub(c(0, I16), c(1, I16), I16)
    cmp = b.icmp("ugt", neg, c(0x100, I16))
    r = b.select(cmp, c(1, I32), c(0, I32), I32)
    b.output(r)
    b.ret(r)

    interp = Interpreter([mod])
    assert interp.run("main").outputs[-1] == 1  # 0xFFFF > 0x100 at i16
    assert ("mwidth", "main") in interp._bits_cache
    assert all(
        isinstance(k, tuple) and all(isinstance(p, str) for p in k)
        for k in interp._bits_cache
    )


# ---------------------------------------------------------------------------
# run() state reset
# ---------------------------------------------------------------------------

def test_interpreter_run_twice_identical(sum_loop_module):
    interp = Interpreter([sum_loop_module])
    first = interp.run("main")
    second = interp.run("main")
    assert first.output_signature() == second.output_signature()
    assert first.steps == second.steps
    assert dict(first.block_counts) == dict(second.block_counts)


def test_bytecode_vm_run_twice_identical(sum_loop_module):
    vm = BytecodeVM([compile_module(sum_loop_module)])
    first = vm.run("main")
    second = vm.run("main")
    assert first.output_signature() == second.output_signature()
    assert first.steps == second.steps
    assert dict(first.block_counts) == dict(second.block_counts)


def test_fuel_exhausted_docstring_clean():
    assert "budget" in FuelExhausted.__doc__
    assert all(ord(ch) < 128 for ch in FuelExhausted.__doc__)


# ---------------------------------------------------------------------------
# profiler wiring: engine selection, caching, RNG transparency
# ---------------------------------------------------------------------------

def test_profiler_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown measure engine"):
        Profiler(get_platform("arm-a57"), engine="jit")


def test_profiler_engines_bit_identical_measurements(dot_module):
    plat = get_platform("arm-a57")
    m_tree = Profiler(plat, seed=5, engine="tree").measure([dot_module])
    m_bc = Profiler(plat, seed=5, engine="bytecode").measure([dot_module])
    assert m_tree.seconds == m_bc.seconds
    assert m_tree.cycles == m_bc.cycles
    assert m_tree.output_signature() == m_bc.output_signature()


def test_profiler_bytecode_cache_hits_and_eviction(dot_module, sum_loop_module):
    prof = Profiler(get_platform("arm-a57"), seed=0, bytecode_cache_size=1)
    prof.execute([dot_module], keys=[("k", "dot")])
    prof.execute([dot_module], keys=[("k", "dot")])
    assert prof.bytecode_compiles == 1
    assert prof.bytecode_cache_hits == 1
    # a second module evicts the first (cache_size=1) -> recompile on return
    prof.execute([sum_loop_module], keys=[("k", "sum")])
    prof.execute([dot_module], keys=[("k", "dot")])
    assert prof.bytecode_compiles == 3


def test_profiler_function_profile_engine_independent(dot_module):
    plat = get_platform("arm-a57")
    p_tree = Profiler(plat, seed=0, engine="tree").function_profile([dot_module])
    p_bc = Profiler(plat, seed=0, engine="bytecode").function_profile([dot_module])
    assert p_tree.function_seconds == p_bc.function_seconds
    assert p_tree.total_seconds == p_bc.total_seconds


# ---------------------------------------------------------------------------
# task wiring: engine choice and batched measurement
# ---------------------------------------------------------------------------

def _make_task(engine, **kw):
    from repro.core.task import AutotuningTask

    return AutotuningTask(
        cbench_program("telecom_adpcm_c"),
        platform="arm-a57",
        seed=11,
        seq_length=6,
        measure_engine=engine,
        **kw,
    )


def test_task_engine_transparent_histories():
    """Same seed, different engine -> identical measured runtimes."""
    configs = None
    runtimes = {}
    for engine in ("tree", "bytecode"):
        with _make_task(engine) as task:
            if configs is None:
                import numpy as np

                rng = np.random.default_rng(3)
                configs = [
                    {m: tuple(int(x) for x in rng.integers(0, len(task.passes), 4))
                     for m in task.hot_modules}
                    for _ in range(3)
                ]
            runtimes[engine] = [task.measure_config(cfg)[0] for cfg in configs]
            assert task.timing_breakdown()["measure_engine"] == engine
    assert runtimes["tree"] == runtimes["bytecode"]


def test_measure_batch_matches_sequential():
    import numpy as np

    with _make_task("bytecode") as task:
        rng = np.random.default_rng(7)
        configs = [
            {m: tuple(int(x) for x in rng.integers(0, len(task.passes), 5))
             for m in task.hot_modules}
            for _ in range(4)
        ]
    with _make_task("bytecode") as task:
        sequential = [task.measure_config(cfg) for cfg in configs]
    with _make_task("bytecode") as task:
        batched = task.measure_batch(configs)
    assert batched == sequential


def test_measure_batch_empty():
    with _make_task("bytecode") as task:
        assert task.measure_batch([]) == []
