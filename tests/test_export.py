"""Exporters (Chrome trace, Prometheus) and the observability overhead guard."""

import json
import time
from pathlib import Path

import pytest

from repro import AutotuningTask, Citroen, cbench_program
from repro.cli import main
from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import RunRecorder, read_events
from repro.obs.trace import Tracer


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("export") / "run"
    assert main(
        [
            "tune", "security_sha", "--budget", "12", "--seed", "1",
            "--seq-length", "8", "--trace-out", str(out),
            "--log-level", "warning",
        ]
    ) == 0
    return out


def _validate_chrome_schema(trace):
    """The subset of the Trace Event Format that Perfetto requires."""
    assert isinstance(trace, dict)
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    for e in events:
        assert e["ph"] in ("X", "B", "i", "M")
        assert isinstance(e["name"], str)
        assert isinstance(e["pid"], int)
        if e["ph"] != "M" or "tid" in e:
            if e["ph"] != "M":
                assert isinstance(e["tid"], int)
        if e["ph"] in ("X", "B", "i"):
            assert isinstance(e["ts"], (int, float))
            assert e["ts"] >= 0
        if e["ph"] == "X":
            assert isinstance(e["dur"], (int, float))
            assert e["dur"] >= 0
    json.dumps(trace)  # must be serialisable as-is


class TestChromeTrace:
    def test_real_run_validates(self, run_dir, tmp_path):
        out = tmp_path / "trace.json"
        events = read_events(run_dir / "events.jsonl")
        trace = write_chrome_trace(events, out)
        _validate_chrome_schema(trace)
        _validate_chrome_schema(json.loads(out.read_text()))
        names = {e["name"] for e in trace["traceEvents"]}
        assert "tune" in names or "measure" in names

    def test_nested_spans_round_trip(self):
        captured = []
        tracer = Tracer(sink=captured.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        trace = chrome_trace(captured)
        spans = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
        outer, inner = spans["outer"], spans["inner"]
        assert outer["tid"] == inner["tid"]
        # nesting survives as interval containment, which is exactly how
        # trace viewers reconstruct the flame graph from "X" events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_unclosed_span_becomes_begin_event(self):
        events = [
            {"type": "span", "name": "done", "ts": 0.0, "wall": 1.0, "depth": 0},
            # the shape an interrupted run leaves: opened, never closed
            {"type": "span", "name": "cut", "ts": 0.5, "depth": 1},
        ]
        trace = chrome_trace(events)
        by_name = {e["name"]: e for e in trace["traceEvents"] if e["ph"] in "XB"}
        assert by_name["done"]["ph"] == "X"
        assert by_name["cut"]["ph"] == "B"
        assert "dur" not in by_name["cut"]
        _validate_chrome_schema(trace)

    def test_resumed_run_timeline_is_monotonic(self):
        events = [
            {"type": "span", "name": "a", "ts": 1.0, "wall": 2.0},
            {"type": "event", "name": "resume_epoch", "epoch": 2},
            {"type": "span", "name": "b", "ts": 0.5, "wall": 1.0},
        ]
        trace = chrome_trace(events)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["ts"] < spans[1]["ts"]
        # the seam marker itself does not become a trace event
        assert all(e["name"] != "resume_epoch" for e in trace["traceEvents"])

    def test_point_events_and_thread_metadata(self):
        events = [
            {"type": "span", "name": "s", "ts": 0.0, "wall": 1.0, "thread": "w-1"},
            {"type": "event", "name": "tick", "ts": 0.5, "attrs": {"k": 1}},
        ]
        trace = chrome_trace(events)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["name"] == "tick"
        assert instants[0]["args"] == {"k": 1}
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        lane_names = {e["args"]["name"] for e in meta}
        assert {"repro", "w-1"} <= lane_names

    def test_analyze_chrome_trace_flag(self, run_dir, tmp_path):
        out = tmp_path / "t.json"
        assert main(
            [
                "analyze", str(run_dir), "--chrome-trace", str(out),
                "--log-level", "warning",
            ]
        ) == 0
        _validate_chrome_schema(json.loads(out.read_text()))


class TestPrometheus:
    def test_registry_exposition(self):
        reg = MetricsRegistry()
        reg.counter("engine.cache_hits").inc(5)
        reg.gauge("engine.cache_size").set(3)
        for v in (0.1, 0.2, 0.3):
            reg.histogram("task.measure_seconds").observe(v)
        text = prometheus_text(reg)
        assert "# TYPE repro_engine_cache_hits_total counter" in text
        assert "repro_engine_cache_hits_total 5" in text
        assert "# TYPE repro_engine_cache_size gauge" in text
        assert "# TYPE repro_task_measure_seconds summary" in text
        assert 'repro_task_measure_seconds{quantile="0.5"}' in text
        assert "repro_task_measure_seconds_count 3" in text

    def test_labels_attached_to_every_sample(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.histogram("h").observe(1.0)
        text = prometheus_text(reg, labels={"program": "sha", "seed": "1"})
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert 'program="sha"' in line and 'seed="1"' in line

    def test_name_sanitization(self):
        text = prometheus_text({"counters": {"weird-name.1": 2}}, prefix="repro")
        assert "repro_weird_name_1_total 2" in text

    def test_cumulative_snapshot_preferred(self):
        snap = {
            "counters": {"n": 1},
            "cumulative": {"counters": {"n": 12}, "gauges": {}, "histograms": {}},
        }
        assert "repro_n_total 12" in prometheus_text(snap)

    def test_analyze_prometheus_flag(self, run_dir, tmp_path):
        out = tmp_path / "m.prom"
        assert main(
            [
                "analyze", str(run_dir), "--prometheus", str(out),
                "--log-level", "warning",
            ]
        ) == 0
        text = out.read_text()
        assert "repro_task_measurements_total" in text
        assert 'program="security_sha"' in text

    def test_write_prometheus_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("x").inc(2)
        out = tmp_path / "x.prom"
        text = write_prometheus(reg, out)
        assert out.read_text() == text


class TestOverheadGuard:
    def test_overhead_under_5_percent_and_histories_bit_identical(self, tmp_path):
        """Tracing + recording must cost <5% of a seeded tune's wall time
        and must not perturb the search by a single bit."""

        def run(recorder):
            with AutotuningTask(
                cbench_program("security_sha"),
                platform="arm-a57",
                seed=1,
                seq_length=16,
                tracer=None if recorder is None else recorder.tracer,
                metrics=None if recorder is None else recorder.registry,
            ) as task:
                res = Citroen(task, seed=3).tune(30)
            return res

        t0 = time.perf_counter()
        plain = run(None)
        plain_elapsed = time.perf_counter() - t0

        recorder = RunRecorder(
            tmp_path / "run", manifest={"command": "tune", "program": "security_sha"}
        )
        t0 = time.perf_counter()
        traced = run(recorder)
        recorder.write_result(traced)
        recorder.write_metrics()
        traced_elapsed = time.perf_counter() - t0
        recorder.close()

        history = lambda r: [  # noqa: E731
            (m.module, tuple(m.sequence), m.runtime) for m in r.measurements
        ]
        assert history(plain) == history(traced)

        # self-accounting: the recorder's own span + counter agree
        metrics = json.loads((tmp_path / "run" / "metrics.json").read_text())
        counter = metrics["counters"]["obs.overhead_seconds"]
        # the counter was synced at write_metrics time; the recorder keeps
        # accruing through close(), so the live total can only be larger
        assert 0 < counter <= recorder.overhead_seconds
        overhead_events = [
            e
            for e in read_events(tmp_path / "run" / "events.jsonl")
            if e.get("name") == "obs.overhead"
        ]
        assert len(overhead_events) == 1
        assert overhead_events[0]["wall"] >= counter * 0.5

        ratio = recorder.overhead_seconds / traced_elapsed
        assert ratio < 0.05, (
            f"observability overhead {ratio:.1%} of traced wall "
            f"({recorder.overhead_seconds:.4f}s / {traced_elapsed:.4f}s; "
            f"untraced arm took {plain_elapsed:.4f}s)"
        )
