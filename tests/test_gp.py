"""Tests for GP regression, kernels and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import Matern52, RBF
from repro.bo.transforms import Standardizer, YeoJohnson


@pytest.fixture
def data(rng):
    X = rng.random((30, 4))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 + 0.01 * rng.standard_normal(30)
    return X, y


class TestKernels:
    @pytest.mark.parametrize("K", [RBF, Matern52])
    def test_psd_and_diag(self, K, rng):
        k = K(3)
        X = rng.random((20, 3))
        M = k(X, X)
        assert np.allclose(M, M.T)
        vals = np.linalg.eigvalsh(M + 1e-10 * np.eye(20))
        assert vals.min() > -1e-8
        assert np.allclose(np.diag(M), k.diag(X))

    @pytest.mark.parametrize("K", [RBF, Matern52])
    def test_hyper_gradients_match_numeric(self, K, rng):
        k = K(3)
        X = rng.random((8, 3))
        eps = 1e-6
        grads = dict(k.grad_hyper(X))
        theta0 = k.get_params()
        for idx in range(k.n_params()):
            tp = theta0.copy()
            tp[idx] += eps
            k.set_params(tp)
            Kp = k(X, X)
            tp[idx] -= 2 * eps
            k.set_params(tp)
            Km = k(X, X)
            k.set_params(theta0)
            numeric = (Kp - Km) / (2 * eps)
            assert np.abs(grads[idx] - numeric).max() < 1e-4, f"param {idx}"

    @pytest.mark.parametrize("K", [RBF, Matern52])
    def test_grad_x_matches_numeric(self, K, rng):
        k = K(3)
        Z = rng.random((6, 3))
        x = rng.random(3)
        g = k.grad_x(x, Z)
        eps = 1e-6
        for d in range(3):
            xp, xm = x.copy(), x.copy()
            xp[d] += eps
            xm[d] -= eps
            numeric = (k(xp[None], Z)[0] - k(xm[None], Z)[0]) / (2 * eps)
            assert np.abs(g[:, d] - numeric).max() < 1e-5

    def test_ard_lengthscales_independent(self):
        k = Matern52(2)
        k.set_params(np.array([np.log(0.1), np.log(10.0), 0.0]))
        X = np.array([[0.0, 0.0]])
        near_dim0 = np.array([[0.2, 0.0]])
        near_dim1 = np.array([[0.0, 0.2]])
        # the short-lengthscale dimension decays much faster
        assert k(X, near_dim0)[0, 0] < k(X, near_dim1)[0, 0]


class TestTransforms:
    def test_yeojohnson_roundtrip(self, rng):
        y = np.exp(rng.standard_normal(50) * 2)  # skewed
        yj = YeoJohnson()
        z = yj.fit_transform(y)
        back = yj.inverse(z)
        assert np.allclose(back, y, rtol=1e-6)

    def test_yeojohnson_negative_values(self, rng):
        y = rng.standard_normal(40) - 2.0
        yj = YeoJohnson()
        assert np.allclose(yj.inverse(yj.fit_transform(y)), y, rtol=1e-6)

    def test_yeojohnson_reduces_skew(self, rng):
        from scipy import stats

        y = np.exp(rng.standard_normal(300) * 1.5)
        z = YeoJohnson().fit_transform(y)
        assert abs(stats.skew(z)) < abs(stats.skew(y))

    def test_yeojohnson_degenerate(self):
        yj = YeoJohnson()
        z = yj.fit_transform(np.ones(5))
        assert np.allclose(yj.inverse(z), 1.0)

    def test_standardizer_roundtrip(self, rng):
        y = rng.standard_normal(30) * 7 + 3
        s = Standardizer()
        z = s.fit_transform(y)
        assert abs(z.mean()) < 1e-12 and abs(z.std() - 1) < 1e-9
        assert np.allclose(s.inverse(z), y)


class TestGP:
    def test_interpolates_training_data(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        mu, sigma = gp.predict(X)
        assert np.corrcoef(mu, gp._z)[0, 1] > 0.99
        assert sigma.max() < 0.5

    def test_uncertainty_grows_away_from_data(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        _, s_near = gp.predict(X[:3])
        far = np.full((1, 4), 3.0)  # outside the unit box entirely
        _, s_far = gp.predict(far)
        assert s_far[0] > s_near.max()

    def test_nll_gradient_matches_numeric(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0)
        gp._X = X
        gp._z = gp._transform_y(y, refit=True)
        theta = gp._pack()
        _, g = gp._nll_and_grad(theta.copy())
        eps = 1e-5
        for i in range(len(theta)):
            tp = theta.copy()
            tp[i] += eps
            fp, _ = gp._nll_and_grad(tp)
            tp[i] -= 2 * eps
            fm, _ = gp._nll_and_grad(tp)
            numeric = (fp - fm) / (2 * eps)
            assert abs(g[i] - numeric) < 1e-3 * max(1.0, abs(numeric)), f"theta[{i}]"

    def test_predict_grad_matches_numeric(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        x0 = rng.random(4)
        mu, sigma, dmu, dsigma = gp.predict_grad(x0)
        # eps can't be too small: the variance path loses ~1e-10 absolute
        # precision through the cached inverse, which finite differences
        # amplify by 1/(2 eps)
        eps = 1e-4
        for d in range(4):
            xp, xm = x0.copy(), x0.copy()
            xp[d] += eps
            xm[d] -= eps
            mp, sp = gp.predict(xp[None])
            mm, sm = gp.predict(xm[None])
            assert abs(dmu[d] - (mp[0] - mm[0]) / (2 * eps)) < 1e-3
            assert abs(dsigma[d] - (sp[0] - sm[0]) / (2 * eps)) < 1e-3

    def test_fantasize_matches_full_recondition(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0, power_transform=False).fit(X, y)
        x_new = rng.random(4)
        z_new = 0.1
        fant = gp.fantasize(x_new, z_new)
        # brute-force: recondition on the extended transformed dataset
        gp2 = GaussianProcess(4, seed=0, power_transform=False)
        gp2.kernel.set_params(gp.kernel.get_params())
        gp2.log_noise = gp.log_noise
        gp2._X = np.vstack([gp._X, x_new[None, :]])
        gp2._z = np.concatenate([gp._z, [z_new]])
        gp2._factorise()
        Xq = rng.random((5, 4))
        m1, s1 = fant.predict(Xq)
        m2, s2 = gp2.predict(Xq)
        assert np.allclose(m1, m2, atol=1e-8)
        assert np.allclose(s1, s2, atol=1e-6)

    def test_fantasize_leaves_original_untouched(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        n_before = gp.n
        gp.fantasize(rng.random(4), 0.0)
        assert gp.n == n_before

    def test_hyperparameter_bounds_respected(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y, n_restarts=2)
        ls = gp.kernel.lengthscales
        assert (ls >= 5e-3 - 1e-9).all() and (ls <= 20.0 + 1e-9).all()
        assert 1e-6 - 1e-12 <= gp.noise <= 1e-2 + 1e-12

    def test_posterior_samples_statistics(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        Xq = rng.random((3, 4))
        draws = gp.posterior_samples(Xq, 4000, rng)
        mu, sigma = gp.predict(Xq)
        assert np.allclose(draws.mean(0), mu, atol=0.08)
        assert np.allclose(draws.std(0), sigma, atol=0.08)

    def test_untransform_mean_roundtrip(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        mu, _ = gp.predict(X)
        back = gp.untransform_mean(mu)
        assert np.corrcoef(back, y)[0, 1] > 0.98

    def test_empty_gp_predicts_prior(self):
        gp = GaussianProcess(3)
        mu, sigma = gp.predict(np.zeros((2, 3)))
        assert np.allclose(mu, 0.0) and np.allclose(sigma, 1.0)


class TestIncrementalConditioning:
    """The rank-1 ``extend`` path and its numerical-fallback contract."""

    @staticmethod
    def _reconditioned(gp, X_new, z_new):
        """Brute force: a fresh GP factorised on the extended transformed
        dataset at the same hyperparameters/transform."""
        gp2 = GaussianProcess(gp.dim, seed=0, power_transform=False)
        gp2.kernel.set_params(gp.kernel.get_params())
        gp2.log_noise = gp.log_noise
        gp2._X = X_new
        gp2._z = z_new
        gp2._factorise()
        return gp2

    @given(
        dim=st.integers(2, 8),
        seed=st.integers(0, 10_000),
        noisy=st.booleans(),
    )
    @settings(deadline=None, max_examples=25)
    def test_extend_matches_full_recondition(self, dim, seed, noisy):
        rng = np.random.default_rng(seed)
        X = rng.random((18, dim))
        y = np.sin(3 * X[:, 0]) + X @ rng.random(dim) + 0.05 * rng.standard_normal(18)
        gp = GaussianProcess(dim, seed=0, power_transform=True).fit(X, y)
        if noisy:
            # exercise the noise-on-diagonal path of the rank-1 update
            gp.log_noise = float(np.log(rng.uniform(1e-5, 1e-2)))
            gp._factorise()
        # three successive extends so errors would compound if present
        for _ in range(3):
            x_new = rng.random(dim)
            y_new = float(rng.random() + 0.5)
            z_before = gp._z
            z_new = float(gp.transform_targets(np.asarray([y_new]))[0])
            used_rank1 = gp.extend(x_new, y_new)
            assert used_rank1
            ref = GaussianProcess(dim, seed=0, power_transform=False)
            ref.kernel.set_params(gp.kernel.get_params())
            ref.log_noise = gp.log_noise
            ref._X = gp._X.copy()
            ref._z = np.concatenate([z_before, [z_new]])
            ref._factorise()
            Xq = rng.random((6, dim))
            m1, s1 = gp.predict(Xq)
            m2, s2 = ref.predict(Xq)
            assert np.allclose(m1, m2, atol=1e-8)
            assert np.allclose(s1, s2, atol=1e-8)

    def test_extend_duplicate_row_stays_sound(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        # an exact duplicate is *not* numerically unsound here — the noise
        # + jitter on the diagonal keeps the Schur complement positive —
        # so the O(n^2) path must handle it and stay finite
        gp.extend(X[7].copy(), float(y[7]))
        assert gp.n == len(X) + 1
        mu, sigma = gp.predict(X[:5])
        assert np.isfinite(mu).all() and np.isfinite(sigma).all()

    def test_extend_fallback_when_rank1_unsound(self, data, monkeypatch):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        # force the degenerate-Schur-complement branch (reachable only via
        # floating-point breakdown): extend must degrade to a full O(n^3)
        # refactorisation, report it, and land in the same posterior
        monkeypatch.setattr(gp, "_rank1_extension", lambda x: None)
        x_new = np.full(4, 0.25)
        y_new = float(y.mean())
        z_before = gp._z
        z_new = float(gp.transform_targets(np.asarray([y_new]))[0])
        used_rank1 = gp.extend(x_new, y_new)
        assert not used_rank1
        assert gp.n == len(X) + 1
        ref = self._reconditioned(
            gp, gp._X.copy(), np.concatenate([z_before, [z_new]])
        )
        m1, s1 = gp.predict(X[:5])
        m2, s2 = ref.predict(X[:5])
        assert np.allclose(m1, m2) and np.allclose(s1, s2)

    def test_extend_requires_conditioned_gp(self):
        gp = GaussianProcess(3)
        with pytest.raises(ValueError):
            gp.extend(np.zeros(3), 1.0)

    def test_extend_keeps_transform_frozen(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        before = gp.transform_targets(y[:5])
        gp.extend(np.full(4, 0.5), float(y.mean()))
        # extend conditions at the *fitted* output transform; mapping of
        # raw targets into the GP space must not move
        assert np.allclose(gp.transform_targets(y[:5]), before)

    def test_fantasize_clone_kernel_independent(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        fant = gp.fantasize(rng.random(4), 0.1)
        assert fant.kernel is not gp.kernel
        Xq = rng.random((5, 4))
        mu_before, sigma_before = fant.predict(Xq)
        # a later hyperparameter change on the parent (as a refit would
        # make) must not leak into the fantasy through a shared kernel
        gp.kernel.set_params(gp.kernel.get_params() + 0.7)
        gp._factorise()
        mu_after, sigma_after = fant.predict(Xq)
        assert np.allclose(mu_before, mu_after)
        assert np.allclose(sigma_before, sigma_after)

    def test_fantasize_does_not_consume_parent_rng(self, data, rng):
        X, y = data
        gp = GaussianProcess(4, seed=7).fit(X, y)
        state_before = gp.rng.bit_generator.state
        fant = gp.fantasize(rng.random(4), 0.0)
        assert gp.rng.bit_generator.state == state_before
        assert fant.rng is not gp.rng

    def test_posterior_samples_near_duplicate_rows(self, data):
        X, y = data
        gp = GaussianProcess(4, seed=0).fit(X, y)
        # duplicate candidate rows make the joint posterior covariance
        # rank-deficient; the escalating-jitter retry must still sample
        Xq = np.repeat(X[3][None, :], 6, axis=0)
        draws = gp.posterior_samples(Xq, 32, np.random.default_rng(0))
        assert draws.shape == (32, 6)
        assert np.isfinite(draws).all()


class TestKernelQuadform:
    """The allocation-light NLL gradient path (eval_with_cache +
    grad_hyper_quadform) must agree with the per-matrix grad_hyper loop."""

    @pytest.mark.parametrize("K", [RBF, Matern52])
    def test_eval_with_cache_matches_call(self, K, rng):
        k = K(4)
        k.set_params(rng.standard_normal(k.n_params()) * 0.3)
        X = rng.random((12, 4))
        Kc, cache = k.eval_with_cache(X)
        assert np.allclose(Kc, k(X, X))
        assert cache  # the geometry actually got shared

    @pytest.mark.parametrize("K", [RBF, Matern52])
    def test_quadform_matches_grad_hyper_loop(self, K, rng):
        k = K(5)
        k.set_params(rng.standard_normal(k.n_params()) * 0.4)
        X = rng.random((10, 5))
        A = rng.standard_normal((10, 10))
        W = A + A.T  # symmetric, like alpha alpha^T - K^-1
        expected = np.array(
            [np.sum(W * dK) for _, dK in k.grad_hyper(X)]
        )
        got = k.grad_hyper_quadform(X, W)
        assert np.allclose(got, expected, atol=1e-10)
        _, cache = k.eval_with_cache(X)
        assert np.allclose(k.grad_hyper_quadform(X, W, cache), expected, atol=1e-10)
