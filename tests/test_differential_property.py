"""Property-based differential testing of the whole pass zoo.

The central correctness property of the compiler substrate: *any* pass
sequence applied to *any* program preserves observable behaviour.  This is
the same differential-testing methodology the paper applies to its tuned
binaries (§1.1), run here as a hypothesis property over random programs
and random sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import SEARCH_PASSES, pipeline
from repro.compiler.verify import verify_module
from repro.machine.bytecode import run_bytecode
from repro.machine.interp import FuelExhausted, InterpError, run_program
from repro.workloads import cbench_program, random_program

_SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _apply_and_compare(program, sequence):
    ref = program.reference_output().output_signature()
    linked = []
    for mod in program.modules:
        cr = run_opt(mod, sequence, verify_each=True)
        verify_module(cr.module)
        linked.append(cr.module)
    out = run_program(linked, program.entry, fuel=program.fuel)
    assert out.output_signature() == ref, (
        f"sequence {sequence} changed semantics of {program.name}"
    )


@given(
    prog_seed=st.integers(0, 10**6),
    seq_seed=st.integers(0, 10**6),
)
@settings(**_SETTINGS)
def test_random_program_random_sequence(prog_seed, seq_seed):
    program = random_program(seed=prog_seed, n_modules=1)
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(1, 25))
    sequence = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    _apply_and_compare(program, sequence)


@given(prog_seed=st.integers(0, 10**6))
@settings(**_SETTINGS)
def test_random_program_o3(prog_seed):
    program = random_program(seed=prog_seed, n_modules=2)
    _apply_and_compare(program, pipeline("-O3"))


@given(seq_seed=st.integers(0, 10**6))
@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
def test_gsm_random_sequences(seq_seed):
    program = cbench_program("telecom_gsm")
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(1, 40))
    sequence = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    _apply_and_compare(program, sequence)


@pytest.mark.parametrize("level", ["-O1", "-O2", "-O3", "-Oz"])
def test_pipeline_levels_on_random_programs(level):
    for seed in range(6):
        program = random_program(seed=7000 + seed, n_modules=2)
        _apply_and_compare(program, pipeline(level))


def test_repeated_o3_idempotent_semantics():
    program = cbench_program("security_sha")
    _apply_and_compare(program, pipeline("-O3") * 3)


# ---------------------------------------------------------------------------
# tree walker == bytecode VM (the measurement-engine equivalence property)
# ---------------------------------------------------------------------------

def _engine_outcome(runner, modules, entry, fuel):
    """Full observable outcome: result fingerprint or (error kind, message)."""
    try:
        res = runner(modules, entry, fuel=fuel)
    except FuelExhausted as exc:  # noqa: B904 - outcome, not re-raise
        return ("fuel", str(exc))
    except InterpError as exc:
        return ("err", str(exc))
    except KeyError as exc:
        return ("key", str(exc))
    return ("ok", res.output_signature(), tuple(sorted(res.block_counts.items())),
            res.steps)


def _compare_engines(modules, entry, fuel):
    tree = _engine_outcome(run_program, modules, entry, fuel)
    bc = _engine_outcome(run_bytecode, modules, entry, fuel)
    assert tree == bc, f"engines diverge (fuel={fuel}):\n tree={tree}\n   bc={bc}"


@given(
    prog_seed=st.integers(0, 10**6),
    seq_seed=st.integers(0, 10**6),
)
@settings(**_SETTINGS)
def test_tree_bytecode_equivalence_random(prog_seed, seq_seed):
    """Compiled programs execute bit-identically on both engines."""
    program = random_program(seed=prog_seed, n_modules=1)
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(1, 25))
    sequence = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    linked = [run_opt(mod, sequence).module for mod in program.modules]
    _compare_engines(linked, program.entry, program.fuel)


@given(
    prog_seed=st.integers(0, 10**6),
    fuel=st.integers(0, 3000),
)
@settings(**_SETTINGS)
def test_tree_bytecode_equivalence_fuel_starved(prog_seed, fuel):
    """Error parity: FuelExhausted trips at the same step, same message."""
    program = random_program(seed=prog_seed, n_modules=1)
    _compare_engines(list(program.modules), program.entry, fuel)


def test_tree_bytecode_equivalence_200_pairs():
    """The ISSUE acceptance sweep: >= 200 deterministic (program, pipeline)
    pairs agree across engines, including O0 (un-normalised IR)."""
    rng = np.random.default_rng(20260808)
    n_pairs = 0
    for prog_seed in range(50):
        program = random_program(seed=9000 + prog_seed, n_modules=2)
        sequences = [[]]  # -O0
        for _ in range(3):
            length = int(rng.integers(1, 20))
            sequences.append(
                [SEARCH_PASSES[i]
                 for i in rng.integers(0, len(SEARCH_PASSES), length)]
            )
        for sequence in sequences:
            linked = [run_opt(mod, sequence).module for mod in program.modules]
            _compare_engines(linked, program.entry, program.fuel)
            n_pairs += 1
    assert n_pairs >= 200
