"""Property-based differential testing of the whole pass zoo.

The central correctness property of the compiler substrate: *any* pass
sequence applied to *any* program preserves observable behaviour.  This is
the same differential-testing methodology the paper applies to its tuned
binaries (§1.1), run here as a hypothesis property over random programs
and random sequences.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import SEARCH_PASSES, pipeline
from repro.compiler.verify import verify_module
from repro.machine.interp import run_program
from repro.workloads import cbench_program, random_program

_SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _apply_and_compare(program, sequence):
    ref = program.reference_output().output_signature()
    linked = []
    for mod in program.modules:
        cr = run_opt(mod, sequence, verify_each=True)
        verify_module(cr.module)
        linked.append(cr.module)
    out = run_program(linked, program.entry, fuel=program.fuel)
    assert out.output_signature() == ref, (
        f"sequence {sequence} changed semantics of {program.name}"
    )


@given(
    prog_seed=st.integers(0, 10**6),
    seq_seed=st.integers(0, 10**6),
)
@settings(**_SETTINGS)
def test_random_program_random_sequence(prog_seed, seq_seed):
    program = random_program(seed=prog_seed, n_modules=1)
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(1, 25))
    sequence = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    _apply_and_compare(program, sequence)


@given(prog_seed=st.integers(0, 10**6))
@settings(**_SETTINGS)
def test_random_program_o3(prog_seed):
    program = random_program(seed=prog_seed, n_modules=2)
    _apply_and_compare(program, pipeline("-O3"))


@given(seq_seed=st.integers(0, 10**6))
@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
def test_gsm_random_sequences(seq_seed):
    program = cbench_program("telecom_gsm")
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(1, 40))
    sequence = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    _apply_and_compare(program, sequence)


@pytest.mark.parametrize("level", ["-O1", "-O2", "-O3", "-Oz"])
def test_pipeline_levels_on_random_programs(level):
    for seed in range(6):
        program = random_program(seed=7000 + seed, n_modules=2)
        _apply_and_compare(program, pipeline(level))


def test_repeated_o3_idempotent_semantics():
    program = cbench_program("security_sha")
    _apply_and_compare(program, pipeline("-O3") * 3)
