"""Tests for the parallel compile engine and the dedup/seed bugfixes.

Covers:

* ``CompileEngine`` — batch order preservation under parallelism, bounded
  LRU eviction, within-batch dedup, thread-safe counters, wall-vs-worker
  time accounting;
* ``AutotuningTask.compile_batch`` — parity with ``compile_module``,
  cache accounting, jobs-invariant results;
* the stale cross-config dedup regression (per-module signature keys
  wrongly reused whole-program runtimes across incumbents);
* ``_o3_seed_sequence`` fallback when the pass alphabet is disjoint from
  the -O3 pipeline;
* truthful per-module sequence logging for whole-config measurements.
"""

import threading
import time

import numpy as np
import pytest

from repro import AutotuningTask, Citroen, CompileEngine, cbench_program, spec_program
from repro.baselines import RandomSearchTuner
from repro.compiler.opt_tool import available_passes
from repro.compiler.pipelines import pipeline
from repro.core.result import TuningResult


def _fresh_result(task):
    """A TuningResult with the extras Citroen._measure_config appends to."""
    r = TuningResult(program=task.program.name, tuner="t", o3_runtime=task.o3_runtime)
    r.extras["winner_strategies"] = []
    r.extras["chosen_modules"] = []
    r.extras["dedup_hits"] = 0
    r.extras["chosen_coverage"] = []
    return r


class TestCompileEngine:
    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            CompileEngine(lambda n, s: None, jobs=0)
        with pytest.raises(ValueError):
            CompileEngine(lambda n, s: None, executor="gpu")

    def test_batch_results_in_input_order_parallel(self):
        def slow_compile(name, seq):
            # later items finish first: order must still follow the input
            time.sleep(0.03 / (int(seq[0]) + 1))
            return (name, tuple(seq))

        eng = CompileEngine(slow_compile, jobs=4, executor="thread")
        items = [("m", [i]) for i in range(8)]
        try:
            out = eng.compile_batch(items)
        finally:
            eng.close()
        assert out == [("m", (i,)) for i in range(8)]

    def test_lru_eviction_and_counters(self):
        calls = []

        def compile_fn(name, seq):
            calls.append((name, tuple(seq)))
            return sum(seq)

        eng = CompileEngine(compile_fn, jobs=1, cache_size=2)
        eng.compile_one("a", [1])
        eng.compile_one("b", [2])
        eng.compile_one("a", [1])  # hit; refreshes "a" to most-recent
        eng.compile_one("c", [3])  # evicts "b" (least recently used)
        eng.compile_one("b", [2])  # miss again: recompiled, evicts "a"
        eng.compile_one("a", [1])  # miss: "a" was just evicted
        info = eng.cache_info()
        assert calls.count(("b", (2,))) == 2
        assert info["evictions"] >= 2
        assert info["size"] == 2
        assert eng.hits == 1
        assert eng.misses == 5
        assert eng.n_compiles == 5

    def test_within_batch_duplicates_compile_once(self):
        calls = []

        def compile_fn(name, seq):
            calls.append((name, tuple(seq)))
            return tuple(seq)

        eng = CompileEngine(compile_fn, jobs=1)
        out = eng.compile_batch([("m", [1]), ("m", [1]), ("m", [2]), ("m", [1])])
        assert out == [(1,), (1,), (2,), (1,)]
        assert len(calls) == 2
        assert eng.hits == 2 and eng.misses == 2

    def test_cache_disabled(self):
        calls = []

        def compile_fn(name, seq):
            calls.append(1)
            return 0

        eng = CompileEngine(compile_fn, cache_size=0)
        eng.compile_one("m", [1])
        eng.compile_one("m", [1])
        assert len(calls) == 2
        assert eng.cache_info()["size"] == 0

    def test_counters_thread_safe_under_concurrent_clients(self):
        def compile_fn(name, seq):
            time.sleep(0.0005)
            return tuple(seq)

        eng = CompileEngine(compile_fn, jobs=4, executor="thread", cache_size=4096)
        n_threads, uniques, repeats = 6, 20, 3

        def client(tid):
            # disjoint key ranges per client so expected counts are exact
            items = [("m", [tid, i]) for i in range(uniques)] * repeats
            eng.compile_batch(items)

        threads = [threading.Thread(target=client, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        eng.close()
        total = n_threads * uniques * repeats
        assert eng.n_compiles == n_threads * uniques
        assert eng.misses == n_threads * uniques
        assert eng.hits == total - n_threads * uniques
        assert eng.cpu_seconds > 0

    def test_wall_time_below_worker_time_when_parallel(self):
        def compile_fn(name, seq):
            time.sleep(0.02)
            return 0

        par = CompileEngine(compile_fn, jobs=4, executor="thread")
        par.compile_batch([("m", [i]) for i in range(8)])
        par.close()
        assert par.wall_seconds < par.cpu_seconds

        ser = CompileEngine(compile_fn, jobs=1)
        ser.compile_batch([("m", [i]) for i in range(8)])
        # serial: wall covers the same work plus bookkeeping
        assert ser.wall_seconds >= ser.cpu_seconds


@pytest.fixture(scope="module")
def gsm_task():
    return AutotuningTask(
        cbench_program("telecom_gsm"), platform="arm-a57", seed=0, seq_length=12
    )


@pytest.fixture(scope="module")
def x264_task():
    return AutotuningTask(
        spec_program("525.x264_r"), platform="arm-a57", seed=0, seq_length=12
    )


class TestTaskCompileBatch:
    def test_batch_matches_compile_module(self, gsm_task):
        rng = np.random.default_rng(0)
        seqs = [rng.integers(0, gsm_task.alphabet, size=12) for _ in range(3)]
        name = gsm_task.hot_modules[0]
        batch = gsm_task.compile_batch([(name, s) for s in seqs])
        for s, (mod, stats) in zip(seqs, batch):
            mod2, stats2 = gsm_task.compile_module(name, s)
            assert stats == stats2
            assert mod.num_instrs() == mod2.num_instrs()

    def test_cache_accounting(self):
        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=8
        )
        name = task.hot_modules[0]
        seq = [0] * 8
        before = task.n_compiles
        task.compile_module(name, seq)
        task.compile_module(name, seq)  # cache hit: no recompile
        assert task.n_compiles == before + 1
        assert task.engine.hits >= 1
        t = task.timing_breakdown()
        assert {
            "compile_wall_seconds",
            "compile_cache_hits",
            "compile_cache_misses",
            "compile_cache_hit_rate",
            "jobs",
        } <= set(t)

    def test_parallel_task_counts_deterministically(self):
        task = AutotuningTask(
            cbench_program("security_sha"),
            platform="arm-a57",
            seed=0,
            seq_length=8,
            jobs=4,
        )
        name = task.hot_modules[0]
        rng = np.random.default_rng(1)
        items = [(name, rng.integers(0, task.alphabet, size=8)) for _ in range(20)]
        task.compile_batch(items)
        keys = {(n, tuple(task.decode(s))) for n, s in items}
        assert task.n_compiles == len(keys)
        assert task.compile_seconds > 0
        task.engine.close()


class TestJobsDeterminism:
    def test_tune_identical_at_jobs_1_and_4(self):
        def run(jobs):
            task = AutotuningTask(
                cbench_program("telecom_gsm"),
                platform="arm-a57",
                seed=0,
                seq_length=12,
                jobs=jobs,
            )
            res = Citroen(task, seed=7, n_init=3, per_strategy=2).tune(10)
            task.engine.close()
            return [(m.module, m.sequence, m.runtime) for m in res.measurements]

        assert run(1) == run(4)


class TestStaleDedupRegression:
    def test_full_config_signature_prevents_stale_reuse(self, x264_task):
        """The old per-module dedup key collides across incumbents; the
        full-config key does not."""
        task = x264_task
        assert len(task.hot_modules) >= 2
        tuner = Citroen(task, seed=1, n_init=2, per_strategy=2)
        result = _fresh_result(task)
        m1, m2 = task.hot_modules[:2]
        rng = np.random.default_rng(3)
        base = {m: rng.integers(0, task.alphabet, size=12) for m in task.hot_modules}
        cfg_a = dict(base)
        cfg_b = dict(base)
        cfg_b[m2] = rng.integers(0, task.alphabet, size=12)  # new incumbent on m2

        tuner._measure_config(cfg_a, result, winner="t")
        assert result.measurements[-1].correct
        runtime_a = result.measurements[-1].runtime
        tuner._measure_config(cfg_b, result, winner="t")
        assert result.measurements[-1].correct
        runtime_b = result.measurements[-1].runtime

        def feats(cfg):
            out = {}
            for name, seq in cfg.items():
                mod, stats = task.compile_module(name, seq)
                out[name] = tuner._features_of(name, seq, mod, stats)
            return out

        feats_a, feats_b = feats(cfg_a), feats(cfg_b)
        # the scenario: m1's module-local statistics are identical in both
        # configs (same sequence), but the full configurations differ
        old_key = tuner.model.signature({m1: feats_a[m1]})
        assert tuner.model.signature({m1: feats_b[m1]}) == old_key
        assert tuner.model.signature(feats_a) != tuner.model.signature(feats_b)
        # old behaviour: _sig_runtime held old_key -> runtime_a, so proposing
        # m1's sequence again under incumbent cfg_b reused runtime_a for a
        # program whose true runtime is runtime_b.  Fixed table keys by the
        # full configuration, so the per-module key cannot match at all:
        assert old_key not in tuner._sig_runtime
        assert tuner._sig_runtime[tuner.model.signature(feats_a)] == runtime_a
        assert tuner._sig_runtime[tuner.model.signature(feats_b)] == runtime_b

    def test_remeasurement_updates_entry(self, gsm_task):
        """setdefault pinned the oldest runtime forever; re-measuring the
        same configuration must refresh the dedup entry."""
        task = gsm_task
        tuner = Citroen(task, seed=2, n_init=2, per_strategy=2)
        result = _fresh_result(task)
        cfg = {m: np.zeros(12, dtype=int) for m in task.hot_modules}
        tuner._measure_config(cfg, result, winner="t")
        tuner._measure_config(cfg, result, winner="t")
        assert result.measurements[-1].correct
        latest = result.measurements[-1].runtime
        assert len(tuner._sig_runtime) == 1
        assert next(iter(tuner._sig_runtime.values())) == latest


class TestO3SeedFallback:
    def _reduced_task(self, **kw):
        non_o3 = [p for p in available_passes() if p not in set(pipeline("-O3"))]
        assert len(non_o3) >= 2, "pass registry no longer has non-O3 passes"
        return AutotuningTask(
            cbench_program("security_sha"),
            platform="arm-a57",
            seed=0,
            passes=non_o3[:4],
            seq_length=8,
            **kw,
        )

    @pytest.mark.filterwarnings("ignore:no -O3 pipeline pass")
    def test_citroen_seed_falls_back_to_random(self):
        task = self._reduced_task()
        tuner = Citroen(task, seed=1, n_init=2, per_strategy=2)
        with pytest.warns(UserWarning, match="no -O3 pipeline pass"):
            seq = tuner._o3_seed_sequence()
        assert seq.shape == (8,)
        assert ((0 <= seq) & (seq < task.alphabet)).all()
        res = tuner.tune(4)
        assert len(res.measurements) == 4

    def test_baseline_seed_falls_back_to_random(self):
        task = self._reduced_task()
        tuner = RandomSearchTuner(task, seed=0)
        with pytest.warns(UserWarning, match="no -O3 pipeline pass"):
            res = tuner.tune(3)
        assert len(res.measurements) == 3


class TestTruthfulMeasurementLogs:
    def test_whole_config_measurements_record_every_module(self, x264_task):
        task = x264_task
        res = Citroen(task, seed=5, n_init=3, per_strategy=2).tune(8)
        assert any(m.module == "all" for m in res.measurements)
        for m in res.measurements:
            assert m.sequences, "full per-module config must be recorded"
            if m.module == "all":
                assert set(m.sequences) == set(task.hot_modules)
                flat = tuple(
                    p for name in sorted(m.sequences) for p in m.sequences[name]
                )
                assert m.sequence == flat
            else:
                assert m.sequence == m.sequences[m.module]

    def test_baseline_measurements_record_config(self, gsm_task):
        task = AutotuningTask(
            cbench_program("telecom_gsm"), platform="arm-a57", seed=0, seq_length=12
        )
        res = RandomSearchTuner(task, seed=3).tune(5)
        for m in res.measurements:
            assert m.sequence == m.sequences[m.module]
