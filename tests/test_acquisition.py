"""Tests for acquisition functions and the AF maximiser."""

import numpy as np
import pytest

from repro.bo.acquisition import (
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    make_acquisition,
    mc_qei,
    mc_qucb,
)
from repro.bo.gp import GaussianProcess
from repro.bo.maximizer import gradient_maximize, multi_start_maximize


@pytest.fixture
def fitted_gp(rng):
    X = rng.random((25, 3))
    y = ((X - 0.4) ** 2).sum(1)
    return GaussianProcess(3, seed=0).fit(X, y)


class TestAnalyticAFs:
    def test_ucb_formula(self, fitted_gp, rng):
        x = rng.random((4, 3))
        mu, sigma = fitted_gp.predict(x)
        af = UpperConfidenceBound(fitted_gp, beta=4.0)
        assert np.allclose(af(x), -mu + 2.0 * sigma)

    def test_ei_nonnegative(self, fitted_gp, rng):
        af = ExpectedImprovement(fitted_gp)
        vals = af(rng.random((50, 3)))
        assert (vals >= -1e-12).all()

    def test_pi_in_unit_interval(self, fitted_gp, rng):
        af = ProbabilityOfImprovement(fitted_gp)
        vals = af(rng.random((50, 3)))
        assert (vals >= 0).all() and (vals <= 1).all()

    def test_ei_highest_near_optimum_region(self, fitted_gp):
        af = ExpectedImprovement(fitted_gp)
        near = af(np.full((1, 3), 0.4))[0]
        far = af(np.full((1, 3), 0.95))[0]
        assert near != far  # landscape is non-trivial

    @pytest.mark.parametrize("name", ["ucb", "ei", "pi"])
    def test_gradients_match_numeric(self, name, fitted_gp, rng):
        af = make_acquisition(name, fitted_gp)
        x0 = rng.random(3)
        v, g = af.value_and_grad(x0)
        assert v == pytest.approx(af(x0[None])[0], rel=1e-6, abs=1e-9)
        eps = 1e-4
        for d in range(3):
            xp, xm = x0.copy(), x0.copy()
            xp[d] += eps
            xm[d] -= eps
            numeric = (af(xp[None])[0] - af(xm[None])[0]) / (2 * eps)
            assert abs(g[d] - numeric) < 2e-3, f"{name} dim {d}"

    def test_factory_rejects_unknown(self, fitted_gp):
        with pytest.raises(KeyError):
            make_acquisition("thompson", fitted_gp)


class TestMonteCarloAFs:
    def test_qei_matches_analytic_at_q1(self, fitted_gp, rng):
        af = ExpectedImprovement(fitted_gp)
        x = rng.random((1, 3))
        analytic = af(x)[0]
        mc = mc_qei(fitted_gp, x, n_samples=20000, rng=0)
        assert mc == pytest.approx(analytic, abs=0.02)

    def test_qei_monotone_in_batch(self, fitted_gp, rng):
        x1 = rng.random((1, 3))
        x2 = np.vstack([x1, rng.random((1, 3))])
        v1 = mc_qei(fitted_gp, x1, n_samples=4000, rng=0)
        v2 = mc_qei(fitted_gp, x2, n_samples=4000, rng=0)
        assert v2 >= v1 - 0.01  # adding a point can only help (noise slack)

    def test_qucb_positive_spread(self, fitted_gp, rng):
        v = mc_qucb(fitted_gp, rng.random((3, 3)), n_samples=2000, rng=0)
        assert np.isfinite(v)


class TestMaximizer:
    def test_gradient_ascent_improves(self, fitted_gp, rng):
        af = make_acquisition("ucb", fitted_gp)
        x0 = rng.random(3)
        x, v = gradient_maximize(af, x0)
        assert v >= af(x0[None])[0] - 1e-9
        assert (x >= 0).all() and (x <= 1).all()

    def test_multi_start_returns_best(self, fitted_gp, rng):
        af = make_acquisition("ucb", fitted_gp)
        starts = rng.random((6, 3))
        x, v = multi_start_maximize(af, starts)
        singles = [gradient_maximize(af, s)[1] for s in starts]
        assert v == pytest.approx(max(singles), rel=1e-9)
