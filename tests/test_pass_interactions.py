"""Integration tests for *pass interactions* — the enabling/disabling
chains that make phase ordering a real search problem (§5.2).

Each test demonstrates that pass B only achieves its effect after pass A
(or is defeated by pass C in between), verified both by statistics and by
measured cycles where relevant.
"""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, GlobalVar, I16, I32, I64, Module, PTR
from repro.compiler.opt_tool import run_opt
from repro.machine.interp import run_program
from repro.machine.cost_model import estimate_cycles
from repro.machine.platforms import get_platform

from tests.conftest import build_dot_kernel, build_sum_loop_module


def _check(mod, seq, target=None):
    ref = run_program([mod]).output_signature()
    cr = run_opt(mod, seq, verify_each=True, target=target)
    assert run_program([cr.module]).output_signature() == ref
    return cr


def _cycles(mod):
    plat = get_platform("arm-a57")
    r = run_program([mod])
    return estimate_cycles([mod], r.block_counts, plat)


class TestEnablingChains:
    def test_unroll_enables_slp(self):
        """A rolled summation loop has no SLP chains; after full unrolling,
        CFG merging and instcombine folding the per-iteration index
        arithmetic to constants, the accumulation chain appears in one
        block with consecutive constant-indexed loads and SLP packs it —
        a four-pass enabling chain."""
        mod = build_sum_loop_module(n=16)
        without = _check(mod, ["mem2reg", "slp-vectorizer"])
        assert without.stats.get("slp-vectorizer", "NumVectorInstructions") == 0
        partial = _check(mod, ["mem2reg", "loop-unroll", "simplifycfg", "slp-vectorizer"])
        assert partial.stats.get("slp-vectorizer", "NumVectorInstructions") == 0
        full = _check(
            mod,
            ["mem2reg", "loop-unroll", "simplifycfg", "instcombine", "slp-vectorizer"],
        )
        assert full.stats.get("slp-vectorizer", "NumVectorInstructions") > 0

    def test_mem2reg_enables_loop_unroll(self, sum_loop_module):
        no_m2r = _check(sum_loop_module, ["loop-unroll"])
        assert no_m2r.stats.get("loop-unroll", "NumFullyUnrolled") == 0
        with_m2r = _check(sum_loop_module, ["mem2reg", "loop-unroll"])
        assert with_m2r.stats.get("loop-unroll", "NumFullyUnrolled") == 1

    def test_mem2reg_enables_loop_vectorize(self, sum_loop_module):
        assert _check(sum_loop_module, ["loop-vectorize"]).stats.get(
            "loop-vectorize", "LoopsVectorized") == 0
        assert _check(sum_loop_module, ["mem2reg", "loop-vectorize"]).stats.get(
            "loop-vectorize", "LoopsVectorized") == 1

    def test_function_attrs_enables_licm_of_calls(self):
        """A pure call inside a loop is only hoistable once function-attrs
        marks the callee readnone."""
        mod = Module("m")
        h = FunctionBuilder(mod, "weight", [("x", I32)], I32)
        h.fn.attrs.add("noinline")
        h.ret(h.mul("x", c(17, I32), I32))
        mod.add_global(GlobalVar("data", I32, list(range(8))))
        b = FunctionBuilder(mod, "main", [], I32)
        arr = b.gaddr("data")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)
        seed = b.load(I32, arr)

        def body(bb, i):
            w = bb.call("weight", [seed], I32)  # loop-invariant pure call
            v = bb.load(I32, bb.gep(arr, i, I32))
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, bb.add(w, v, I32), I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)

        no_attrs = _check(mod, ["mem2reg", "licm"])
        r1 = run_program([no_attrs.module])
        calls_no = sum(
            n for (m, f, blk), n in r1.block_counts.items() if f == "weight"
        )
        with_attrs = _check(mod, ["mem2reg", "function-attrs", "licm"])
        r2 = run_program([with_attrs.module])
        calls_with = sum(
            n for (m, f, blk), n in r2.block_counts.items() if f == "weight"
        )
        assert calls_no == 8 and calls_with == 1

    def test_inline_enables_intraprocedural_folding(self):
        """Inlining a tiny helper exposes its body to constant folding."""
        mod = Module("m")
        h = FunctionBuilder(mod, "addk", [("x", I32)], I32)
        h.ret(h.add("x", c(5, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("addk", [c(10, I32)], I32)
        b.output(out)
        b.ret(out)
        no_inline = _check(mod, ["sccp", "instcombine", "dce"])
        assert any(i.op == "call" for i in no_inline.module.functions["main"].instructions())
        with_inline = _check(mod, ["inline", "sccp", "instcombine", "dce", "globaldce"])
        main_fn = with_inline.module.functions["main"]
        assert all(i.op in ("output", "ret", "jmp") for i in main_fn.instructions())

    def test_rotate_then_licm_reduces_cycles(self):
        """Rotation + LICM beats LICM alone on a guarded loop with an
        invariant expression (fewer blocks per iteration)."""
        mod = Module("m")
        mod.add_global(GlobalVar("data", I32, list(range(32))))
        mod.add_global(GlobalVar("k", I32, [3]))
        b = FunctionBuilder(mod, "main", [], I32)
        arr = b.gaddr("data")
        kv = b.load(I32, b.gaddr("k"))
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            heavy = bb.mul(kv, c(1000, I32), I32)
            v = bb.load(I32, bb.gep(arr, i, I32))
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, bb.add(heavy, v, I32), I32), acc)

        b.counted_loop(c(0, I32), c(32, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        plain = _check(mod, ["mem2reg", "licm"])
        rotated = _check(mod, ["mem2reg", "loop-rotate", "licm", "simplifycfg"])
        assert _cycles(rotated.module) < _cycles(plain.module)

    def test_sroa_enables_slp_like_mem2reg(self):
        """On the real telecom_gsm kernel (global arrays, so the data stays
        in memory) sroa promotes the accumulator chain just like mem2reg and
        unlocks SLP."""
        from repro.workloads import cbench_program

        mod = cbench_program("telecom_gsm").get_module("long_term")
        cr = run_opt(mod, ["sroa", "slp-vectorizer"], verify_each=True)
        assert cr.stats.get("slp-vectorizer", "NumVectorInstructions") > 0

    def test_sroa_scalarisation_defeats_our_slp_on_local_arrays(self):
        """Conversely, when sroa fully scalarises constant local arrays the
        loads disappear and the (load-based) SLP matcher finds nothing —
        order and program shape interact."""
        mod = build_dot_kernel()
        cr = _check(mod, ["sroa", "slp-vectorizer"])
        assert cr.stats.get("sroa", "NumReplaced") == 2
        assert cr.stats.get("slp-vectorizer", "NumVectorInstructions") == 0


class TestDisablingInteractions:
    def test_widening_is_the_culprit_not_instcombine_itself(self):
        """Disabling only the widening rule makes instcombine SLP-safe —
        pinpointing the exact interaction of Fig 5.1."""
        from repro.compiler.passes.instcombine import InstCombine

        mod = build_dot_kernel()
        old = InstCombine.widen_arith
        try:
            InstCombine.widen_arith = False
            cr = _check(mod, ["mem2reg", "instcombine", "slp-vectorizer"])
            assert cr.stats.get("slp-vectorizer", "NumVectorInstructions") > 0
        finally:
            InstCombine.widen_arith = old

    def test_aggressive_dce_before_mem2reg_is_harmless(self, sum_loop_module):
        cr = _check(sum_loop_module, ["adce", "dce", "mem2reg", "loop-unroll"])
        assert cr.stats.get("loop-unroll", "NumFullyUnrolled") == 1

    def test_unswitch_blows_code_size(self):
        """Loop unswitching duplicates the loop: a size/speed trade-off the
        cost model's I-cache term can punish."""
        mod = Module("m")
        mod.add_global(GlobalVar("flag", I32, [1]))
        mod.add_global(GlobalVar("g", I32, list(range(8))))
        b = FunctionBuilder(mod, "main", [], I32)
        fl = b.load(I32, b.gaddr("flag"))
        inv = b.icmp("eq", fl, c(1, I32))
        g = b.gaddr("g")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            slot = bb.alloca(I32)
            bb.if_then(inv, lambda bt: bt.store(bt.load(I32, bt.gep(g, i, I32)), slot),
                       lambda bt: bt.store(c(0, I32), slot), tag="sw")
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, bb.load(I32, slot), I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        before = _check(mod, ["mem2reg"])
        after = _check(mod, ["mem2reg", "loop-unswitch"])
        assert after.module.num_instrs() > before.module.num_instrs()


class TestStatisticsExposure:
    def test_statistics_differ_where_ir_features_do_not(self):
        """function-attrs changes statistics but not Autophase features —
        the §3.4 blind spot in one assertion."""
        from repro.features.autophase import autophase_features

        mod = Module("m")
        h = FunctionBuilder(mod, "pure", [("x", I32)], I32)
        h.ret(h.mul("x", "x", I32))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("pure", [c(3, I32)], I32)
        b.output(out)
        b.ret(out)

        plain = run_opt(mod, [])
        attred = run_opt(mod, ["function-attrs"])
        assert autophase_features(plain.module) == autophase_features(attred.module)
        assert plain.stats_json() != attred.stats_json()

    def test_same_binary_same_statistics_signature(self):
        """Sequences producing identical binaries produce identical
        statistics signatures — the dedup invariant (§3.1.1)."""
        from repro.features.stats_features import StatsVectorizer

        mod = build_dot_kernel()
        v = StatsVectorizer()
        a = run_opt(mod, ["mem2reg", "dce"])
        bb = run_opt(mod, ["mem2reg", "dce", "dce"])  # second dce is a no-op
        assert v.signature(a.stats_json()) == v.signature(bb.stats_json())
