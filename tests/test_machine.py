"""Tests for platforms, cost model and profiler."""

import numpy as np
import pytest

from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import pipeline
from repro.machine.cost_model import estimate_cycles, instr_cycles, static_code_size
from repro.machine.interp import run_program
from repro.machine.platforms import PLATFORMS, get_platform
from repro.machine.profiler import Profiler
from repro.compiler.ir import Const, I32, I64, Instr, vec
from repro.workloads import cbench_program, spec_program

from tests.conftest import build_sum_loop_module


class TestPlatforms:
    def test_both_platforms_exist(self):
        assert set(PLATFORMS) == {"arm-a57", "amd-x86"}

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            get_platform("riscv")

    def test_vector_widths_differ(self):
        assert get_platform("arm-a57").vector_bits == 128
        assert get_platform("amd-x86").vector_bits == 256

    def test_target_info_derived(self):
        ti = get_platform("arm-a57").target_info()
        assert ti.vector_bits == 128
        assert ti.min_vector_lanes == 4


class TestCostModel:
    def test_div_costs_more_than_add(self):
        p = get_platform("arm-a57")
        add = Instr("add", "%x", I32, (Const(1, I32), Const(2, I32)))
        div = Instr("sdiv", "%y", I32, (Const(1, I32), Const(2, I32)))
        assert instr_cycles(div, p) > 5 * instr_cycles(add, p)

    def test_vector_splits_charged(self):
        p = get_platform("arm-a57")  # 128-bit registers
        v4 = Instr("add", "%v", vec(I32, 4), ("%a", "%b"))
        v16 = Instr("add", "%w", vec(I32, 16), ("%a", "%b"))
        assert instr_cycles(v16, p) == pytest.approx(4 * instr_cycles(v4, p))

    def test_memset_scales_with_count(self):
        p = get_platform("arm-a57")
        small = Instr("memset", None, args=("%p", Const(0, I32), Const(4, I64)), elem_ty=I32)
        big = Instr("memset", None, args=("%p", Const(0, I32), Const(64, I64)), elem_ty=I32)
        assert instr_cycles(big, p) > instr_cycles(small, p)

    def test_estimate_positive_and_o3_faster(self, sum_loop_module):
        p = get_platform("arm-a57")
        r0 = run_program([sum_loop_module])
        c0 = estimate_cycles([sum_loop_module], r0.block_counts, p)
        opt = run_opt(sum_loop_module, pipeline("-O3")).module
        r3 = run_program([opt])
        c3 = estimate_cycles([opt], r3.block_counts, p)
        assert 0 < c3 < c0

    def test_icache_penalty_kicks_in(self, sum_loop_module):
        p = get_platform("arm-a57")
        r = run_program([sum_loop_module])
        base = estimate_cycles([sum_loop_module], r.block_counts, p)
        # duplicate the module's static size far past the I$ capacity
        bloated = sum_loop_module.clone()
        src_fn = bloated.functions["main"]
        for k in range(300):
            clone = src_fn.clone()
            clone.name = f"pad{k}"
            bloated.functions[clone.name] = clone
        assert static_code_size([bloated]) > p.icache_capacity
        inflated = estimate_cycles([bloated], r.block_counts, p)
        assert inflated > base


class TestProfiler:
    def test_measurement_noise_bounded_and_seeded(self, sum_loop_module):
        p1 = Profiler(get_platform("arm-a57"), seed=7)
        p2 = Profiler(get_platform("arm-a57"), seed=7)
        m1 = p1.measure([sum_loop_module])
        m2 = p2.measure([sum_loop_module])
        assert m1.seconds == pytest.approx(m2.seconds)
        assert m1.seconds == pytest.approx(m1.cycles / (2.0 * 1e9), rel=0.2)

    def test_execute_noise_free(self, sum_loop_module):
        p = Profiler(get_platform("arm-a57"), seed=0)
        r1 = p.execute([sum_loop_module])
        r2 = p.execute([sum_loop_module])
        assert r1.output_signature() == r2.output_signature()

    def test_function_profile_finds_hot_module(self):
        prog = cbench_program("telecom_gsm")
        p = Profiler(get_platform("arm-a57"), seed=0)
        prof = p.function_profile(prog.modules)
        hot = prof.hot_modules(0.9)
        assert "long_term" in hot
        assert prof.total_seconds > 0

    def test_hot_modules_coverage_monotone(self):
        prog = spec_program("525.x264_r")
        p = Profiler(get_platform("arm-a57"), seed=0)
        prof = p.function_profile(prog.modules)
        assert len(prof.hot_modules(0.5)) <= len(prof.hot_modules(0.99))

    def test_platforms_rank_programs_differently(self):
        # the same binary gets different cycle counts per platform
        prog = cbench_program("telecom_adpcm_c")
        arm = Profiler(get_platform("arm-a57"), seed=0).measure(prog.modules)
        x86 = Profiler(get_platform("amd-x86"), seed=0).measure(prog.modules)
        assert arm.cycles != x86.cycles
