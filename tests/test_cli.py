"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_programs_command(capsys):
    assert main(["programs"]) == 0
    out = capsys.readouterr().out
    assert "telecom_gsm" in out and "519.lbm_r" in out


def test_passes_command(capsys):
    assert main(["passes"]) == 0
    out = capsys.readouterr().out.split()
    assert "mem2reg" in out and "slp-vectorizer" in out


def test_motivate_command(capsys):
    assert main(["motivate"]) == 0
    out = capsys.readouterr().out
    assert "mem2reg slp-vectorizer" in out
    assert "x" in out  # speedup column


def test_tune_command_small_budget(capsys):
    rc = main([
        "tune", "security_sha", "--budget", "6", "--seed", "1",
        "--seq-length", "12", "--show-sequences",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup/-O3" in out
    assert "[sha_transform]" in out


def test_tune_unknown_program():
    with pytest.raises(SystemExit):
        main(["tune", "not_a_program", "--budget", "2"])


def test_compare_command(capsys):
    rc = main([
        "compare", "security_sha", "--tuners", "random,ga", "--budget", "5",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "random" in out and "ga" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
