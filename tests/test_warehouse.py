"""The cross-run warehouse: ingest, history, and the fleet regression gate."""

import json
import shutil
import sqlite3
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.warehouse import (
    SCHEMA_VERSION,
    Warehouse,
    diff_against_warehouse,
    history_table,
)


@pytest.fixture(scope="module")
def run_a(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("wh") / "run_a"
    assert main(
        [
            "tune", "security_sha", "--budget", "12", "--seed", "1",
            "--seq-length", "8", "--trace-out", str(out),
            "--log-level", "warning",
        ]
    ) == 0
    return out


@pytest.fixture(scope="module")
def run_b(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("wh") / "run_b"
    assert main(
        [
            "tune", "security_sha", "--budget", "12", "--seed", "2",
            "--seq-length", "8", "--trace-out", str(out),
            "--log-level", "warning",
        ]
    ) == 0
    return out


@pytest.fixture()
def db(tmp_path) -> Path:
    return tmp_path / "wh.sqlite"


def _bench_payload(tmp_path: Path, git_rev: str = "abc123") -> Path:
    payload = {
        "schema": "bench_interp",
        "schema_version": 1,
        "git_rev": git_rev,
        "program": "security_sha",
        "seed": 1,
        "e2e": {"engines": {"bytecode": {"wall": 0.25}}},
    }
    p = tmp_path / f"BENCH_interp_{git_rev}.json"
    p.write_text(json.dumps(payload))
    return p


class TestIngest:
    def test_index_run_row(self, run_a, db):
        with Warehouse(db) as wh:
            row = wh.index_run(run_a)
            assert row["program"] == "security_sha"
            assert row["tuner"] == "citroen"
            assert row["seed"] == 1
            assert row["interrupted"] == 0
            assert row["n_measurements"] == 12
            assert row["best_runtime"] > 0
            assert row["speedup_vs_o3"] > 0
            stored = wh.runs()
            assert len(stored) == 1
            assert stored[0]["path"] == str(run_a.resolve())

    def test_reindex_is_idempotent(self, run_a, db):
        with Warehouse(db) as wh:
            wh.index_run(run_a)
            wh.index_run(run_a)
            assert len(wh.runs()) == 1

    def test_index_interrupted_run(self, run_a, db, tmp_path):
        killed = tmp_path / "killed"
        shutil.copytree(run_a, killed)
        (killed / "result.json").unlink()
        with Warehouse(db) as wh:
            row = wh.index_run(killed)
            assert row["interrupted"] == 1
            assert row["n_measurements"] == 12  # from the WAL

    def test_index_bench_payload(self, db, tmp_path):
        p = _bench_payload(tmp_path)
        with Warehouse(db) as wh:
            row = wh.index_bench(p)
            assert row["suite"] == "interp"
            assert row["wall_seconds"] == pytest.approx(0.25)
            wh.index_bench(p)  # same path+rev: refresh, not duplicate
            assert len(wh.benches()) == 1

    def test_index_rejects_non_bench_json(self, db, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"schema": "something_else"}')
        with Warehouse(db) as wh:
            with pytest.raises(ValueError):
                wh.index_bench(p)

    def test_newer_schema_refused(self, db):
        Warehouse(db).close()
        conn = sqlite3.connect(str(db))
        with conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        conn.close()
        with pytest.raises(ValueError):
            Warehouse(db)


class TestQueries:
    def test_baseline_median_excludes_interrupted_and_self(
        self, run_a, run_b, db, tmp_path
    ):
        killed = tmp_path / "killed"
        shutil.copytree(run_a, killed)
        (killed / "result.json").unlink()
        with Warehouse(db) as wh:
            wh.index_run(run_a)
            wh.index_run(run_b)
            wh.index_run(killed)
            base = wh.baseline("security_sha", last_n=10, exclude_path=run_b)
            # killed is interrupted, run_b is the candidate: only run_a left
            assert base["n_runs"] == 1
            assert base["paths"] == [str(run_a.resolve())]
            assert base["metrics"]["best_runtime"] is not None
            both = wh.baseline("security_sha", last_n=10)
            assert both["n_runs"] == 2

    def test_history_table_renders(self, run_a, run_b, db, tmp_path):
        with Warehouse(db) as wh:
            wh.index_run(run_a)
            wh.index_run(run_b)
            wh.index_bench(_bench_payload(tmp_path))
            text = history_table(wh)
            assert "security_sha" in text
            assert "citroen" in text
            assert "interp" in text
            filtered = history_table(wh, benchmark="security_sha")
            assert "security_sha" in filtered


class TestFleetGate:
    def test_diff_against_warehouse_passes_comparable_run(self, run_a, run_b, db):
        with Warehouse(db) as wh:
            wh.index_run(run_a)
            wh.index_run(run_b)
        verdict = diff_against_warehouse(run_b, db, last_n=5)
        assert verdict["run_b"] == str(run_b)
        assert verdict["baseline"]["n_runs"] == 1
        names = [c["name"] for c in verdict["checks"]]
        assert names == [
            "best_runtime", "wall_seconds", "cache_hit_rate", "calibration_rmse",
        ]
        # same program, same budget, different seed: the runtime gate must
        # hold well inside the default 5% at these tolerances
        runtime = next(c for c in verdict["checks"] if c["name"] == "best_runtime")
        assert runtime["ratio"] is not None

    def test_empty_baseline_skips_not_fails(self, run_a, db):
        with Warehouse(db) as wh:
            wh.index_run(run_a)
        # the only indexed run IS the candidate: baseline is empty
        verdict = diff_against_warehouse(run_a, db, last_n=5)
        assert verdict["ok"]
        assert all(c["skipped"] for c in verdict["checks"])

    def test_regression_detected_against_fleet(self, run_a, db, tmp_path):
        with Warehouse(db) as wh:
            wh.index_run(run_a)
        slow = tmp_path / "slow"
        shutil.copytree(run_a, slow)
        result = json.loads((slow / "result.json").read_text())
        for m in result["measurements"]:
            m["runtime"] = m["runtime"] * 10
        (slow / "result.json").write_text(json.dumps(result))
        verdict = diff_against_warehouse(slow, db, last_n=5)
        assert "best_runtime" in verdict["regressions"]
        assert verdict["regressed"]


class TestCli:
    def test_obs_index_and_history(self, run_a, run_b, db, tmp_path, capsys):
        bench = _bench_payload(tmp_path)
        assert main(
            ["obs", "index", str(run_a), str(run_b), str(bench), "--db", str(db)]
        ) == 0
        out = capsys.readouterr().out
        assert "3 item(s) indexed" in out
        assert main(["obs", "history", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "security_sha" in out
        assert main(
            ["obs", "history", "--db", str(db), "--benchmark", "security_sha"]
        ) == 0

    def test_obs_history_missing_db_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "history", "--db", str(tmp_path / "nope.sqlite")])

    def test_diff_against_cli(self, run_a, run_b, db, tmp_path, capsys):
        assert main(["obs", "index", str(run_a), "--db", str(db)]) == 0
        capsys.readouterr()
        json_out = tmp_path / "verdict.json"
        code = main(
            [
                "diff", str(run_b), "--against", "warehouse:last-5",
                "--db", str(db), "--max-wall-ratio", "5.0",
                "--max-runtime-ratio", "1.5", "--max-calibration-ratio", "10",
                "--max-cache-hit-drop", "1.0", "--json-out", str(json_out),
            ]
        )
        assert code == 0
        verdict = json.loads(json_out.read_text())
        assert verdict["run_a"].startswith("warehouse:last-5")

    def test_diff_against_rejects_bad_spec(self, run_a, db):
        with pytest.raises(SystemExit):
            main(["diff", str(run_a), "--against", "fleet:last-2", "--db", str(db)])
        with pytest.raises(SystemExit):
            main(["diff", str(run_a), str(run_a), "--against", "warehouse:last-2"])
        with pytest.raises(SystemExit):
            main(["diff", str(run_a)])  # run_b missing and no --against
