"""Interprocedural pass tests."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, GlobalVar, I32, I64, Module, PTR, VOID
from repro.compiler.opt_tool import run_opt
from repro.machine.interp import run_program


def _opcount(mod, op):
    return sum(1 for f in mod.functions.values() for i in f.instructions() if i.op == op)


def _check(mod, seq):
    ref = run_program([mod]).output_signature()
    cr = run_opt(mod, seq, verify_each=True)
    out = run_program([cr.module]).output_signature()
    assert out == ref, f"{seq} changed semantics: {out} vs {ref}"
    return cr


def _mod_with_helper(helper_rets=None, big=False):
    mod = Module("m")
    h = FunctionBuilder(mod, "helper", [("x", I32)], I32)
    if big:
        cur = "x"
        for _ in range(60):
            cur = h.add(cur, c(1, I32), I32)
        h.ret(cur)
    else:
        h.ret(h.add("x", c(10, I32), I32))
    b = FunctionBuilder(mod, "main", [], I32)
    r = b.call("helper", [c(5, I32)], I32)
    b.output(r)
    b.ret(r)
    return mod


class TestInline:
    def test_small_callee_inlined(self):
        cr = _check(_mod_with_helper(), ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 1
        assert _opcount(cr.module, "call") == 0
        assert run_program([cr.module]).ret == 15

    def test_large_callee_not_inlined(self):
        cr = _check(_mod_with_helper(big=True), ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 0

    def test_alwaysinline_overrides_threshold(self):
        mod = _mod_with_helper(big=True)
        mod.functions["helper"].attrs.add("alwaysinline")
        cr = _check(mod, ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 1

    def test_noinline_respected(self):
        mod = _mod_with_helper()
        mod.functions["helper"].attrs.add("noinline")
        cr = _check(mod, ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 0

    def test_multi_return_callee(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "absv", [("x", I32)], I32)
        cond = h.icmp("slt", "x", c(0, I32))
        h.br(cond, "neg", "pos")
        h.block("neg")
        h.ret(h.sub(c(0, I32), "x", I32))
        h.block("pos")
        h.ret("x")
        b = FunctionBuilder(mod, "main", [], I32)
        r1 = b.call("absv", [c(-4, I32)], I32)
        r2 = b.call("absv", [c(6, I32)], I32)
        out = b.add(r1, r2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 2
        assert run_program([cr.module]).ret == 10

    def test_recursive_not_inlined(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "rec", [("x", I32)], I32)
        done = h.icmp("sle", "x", c(0, I32))
        h.br(done, "base", "step")
        h.block("base")
        h.ret(c(0, I32))
        h.block("step")
        r = h.call("rec", [h.sub("x", c(1, I32), I32)], I32)
        h.ret(h.add(r, c(1, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("rec", [c(5, I32)], I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["inline"])
        assert cr.stats.get("inline", "NumInlined") == 0


class TestFunctionAttrs:
    def test_pure_marked_readnone(self):
        cr = _check(_mod_with_helper(), ["function-attrs"])
        assert "readnone" in cr.module.functions["helper"].attrs
        assert cr.stats.get("function-attrs", "NumReadNone") >= 1

    def test_writer_not_readnone(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [0]))
        w = FunctionBuilder(mod, "w", [], VOID)
        w.store(c(1, I32), w.gaddr("g"))
        w.ret()
        b = FunctionBuilder(mod, "main", [], I32)
        b.call("w", [])
        out = b.load(I32, b.gaddr("g"))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["function-attrs"])
        assert "readnone" not in cr.module.functions["w"].attrs
        assert "readonly" not in cr.module.functions["w"].attrs

    def test_reader_marked_readonly(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [3]))
        r = FunctionBuilder(mod, "r", [], I32)
        r.ret(r.load(I32, r.gaddr("g")))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("r", [], I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["function-attrs"])
        assert "readonly" in cr.module.functions["r"].attrs

    def test_enables_gvn_of_calls(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "f", [("x", I32)], I32)
        h.fn.attrs.add("noinline")
        h.ret(h.mul("x", "x", I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r1 = b.call("f", [c(3, I32)], I32)
        r2 = b.call("f", [c(3, I32)], I32)
        out = b.add(r1, r2, I32)
        b.output(out)
        b.ret(out)
        # without function-attrs GVN cannot touch the calls
        cr1 = _check(mod, ["gvn"])
        assert _opcount(cr1.module, "call") == 2
        cr2 = _check(mod, ["function-attrs", "gvn"])
        assert _opcount(cr2.module, "call") == 1


class TestIPSCCP:
    def test_uniform_const_arg_propagated(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "scale", [("x", I32), ("k", I32)], I32)
        h.fn.attrs.add("internal")
        h.fn.attrs.add("noinline")
        h.ret(h.mul("x", "k", I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r1 = b.call("scale", [c(2, I32), c(7, I32)], I32)
        r2 = b.call("scale", [c(3, I32), c(7, I32)], I32)
        out = b.add(r1, r2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["ipsccp"])
        assert cr.stats.get("ipsccp", "IPNumArgsElimed") == 1

    def test_varying_arg_untouched(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "scale", [("x", I32)], I32)
        h.fn.attrs.add("internal")
        h.ret(h.mul("x", c(2, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r1 = b.call("scale", [c(2, I32)], I32)
        r2 = b.call("scale", [c(3, I32)], I32)
        out = b.add(r1, r2, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["ipsccp"])
        assert cr.stats.get("ipsccp", "IPNumArgsElimed") == 0


class TestDeadArgElim:
    def test_unused_arg_removed_everywhere(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "f", [("used", I32), ("dead", I32)], I32)
        h.fn.attrs.add("internal")
        h.ret(h.add("used", c(1, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r = b.call("f", [c(4, I32), c(999, I32)], I32)
        b.output(r)
        b.ret(r)
        cr = _check(mod, ["deadargelim"])
        assert cr.stats.get("deadargelim", "NumArgumentsEliminated") == 1
        assert len(cr.module.functions["f"].params) == 1

    def test_exported_function_untouched(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "f", [("dead", I32)], I32)
        h.ret(c(1, I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r = b.call("f", [c(4, I32)], I32)
        b.output(r)
        b.ret(r)
        cr = _check(mod, ["deadargelim"])
        assert cr.stats.get("deadargelim", "NumArgumentsEliminated") == 0


class TestArgPromotion:
    def test_pointer_arg_promoted(self):
        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [11]))
        h = FunctionBuilder(mod, "f", [("p", PTR)], I32)
        h.fn.attrs.add("internal")
        h.fn.attrs.add("noinline")
        v = h.load(I32, "p")
        h.ret(h.add(v, c(1, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        r = b.call("f", [b.gaddr("g")], I32)
        b.output(r)
        b.ret(r)
        cr = _check(mod, ["argpromotion"])
        assert cr.stats.get("argpromotion", "NumArgumentsPromoted") == 1
        assert cr.module.functions["f"].params[0][1] == I32
        assert run_program([cr.module]).ret == 12


class TestGlobalPasses:
    def test_globalopt_marks_readonly_global_const(self):
        mod = Module("m")
        mod.add_global(GlobalVar("tbl", I32, [1, 2, 3]))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.load(I32, b.gep(b.gaddr("tbl"), c(1, I64), I32))
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["globalopt"])
        assert cr.module.globals["tbl"].const
        assert cr.stats.get("globalopt", "NumMarked") == 1

    def test_globalopt_keeps_written_global_mutable(self):
        mod = Module("m")
        mod.add_global(GlobalVar("ctr", I32, [0]))
        b = FunctionBuilder(mod, "main", [], I32)
        g = b.gaddr("ctr")
        b.store(c(5, I32), g)
        out = b.load(I32, g)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["globalopt"])
        assert not cr.module.globals["ctr"].const

    def test_globaldce_removes_unreachable_internal(self):
        mod = Module("m")
        dead = FunctionBuilder(mod, "never", [], I32)
        dead.fn.attrs.add("internal")
        dead.ret(c(1, I32))
        b = FunctionBuilder(mod, "main", [], I32)
        b.output(c(1, I32))
        b.ret(c(1, I32))
        cr = _check(mod, ["globaldce"])
        assert "never" not in cr.module.functions
        assert cr.stats.get("globaldce", "NumFunctions") == 1

    def test_constmerge_merges_identical(self):
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, [1, 2], const=True))
        mod.add_global(GlobalVar("bg", I32, [1, 2], const=True))
        b = FunctionBuilder(mod, "main", [], I32)
        x = b.load(I32, b.gaddr("a"))
        y = b.load(I32, b.gaddr("bg"))
        out = b.add(x, y, I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["constmerge"])
        assert cr.stats.get("constmerge", "NumMerged") == 1
        assert len(cr.module.globals) == 1

    def test_mergefunc_dedups_identical_bodies(self):
        mod = Module("m")
        for name in ("f1", "f2"):
            h = FunctionBuilder(mod, name, [("x", I32)], I32)
            if name == "f2":
                h.fn.attrs.add("internal")
            h.ret(h.add("x", c(3, I32), I32))
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.add(b.call("f1", [c(1, I32)], I32), b.call("f2", [c(2, I32)], I32), I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mergefunc"])
        assert cr.stats.get("mergefunc", "NumFunctionsMerged") == 1
        assert "f2" not in cr.module.functions


class TestTailCallElim:
    def test_self_recursion_becomes_loop(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "count", [("n", I32), ("acc", I32)], I32)
        done = h.icmp("sle", "n", c(0, I32))
        h.br(done, "base", "step")
        h.block("base")
        h.ret("acc")
        h.block("step")
        r = h.call(
            "count", [h.sub("n", c(1, I32), I32), h.add("acc", c(2, I32), I32)], I32
        )
        h.ret(r)
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("count", [c(300, I32), c(0, I32)], I32)
        b.output(out)
        b.ret(out)
        # depth 300 exceeds the interpreter's recursion guard: the program
        # only runs at all after tail-call elimination
        with pytest.raises(Exception):
            run_program([mod])
        cr = run_opt(mod, ["tailcallelim"], verify_each=True)
        assert cr.stats.get("tailcallelim", "NumEliminated") == 1
        assert run_program([cr.module]).ret == 600

    def test_non_tail_call_untouched(self):
        mod = Module("m")
        h = FunctionBuilder(mod, "fact", [("n", I32)], I32)
        done = h.icmp("sle", "n", c(1, I32))
        h.br(done, "base", "step")
        h.block("base")
        h.ret(c(1, I32))
        h.block("step")
        r = h.call("fact", [h.sub("n", c(1, I32), I32)], I32)
        h.ret(h.mul("n", r, I32))  # multiply AFTER the call: not a tail call
        b = FunctionBuilder(mod, "main", [], I32)
        out = b.call("fact", [c(6, I32)], I32)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["tailcallelim"])
        assert cr.stats.get("tailcallelim", "NumEliminated") == 0
        assert run_program([cr.module]).ret == 720
