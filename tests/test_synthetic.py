"""Tests for synthetic functions and simulated tasks."""

import numpy as np
import pytest

from repro.synthetic import (
    FlagSelectionTask,
    SYNTHETIC_FUNCTIONS,
    ackley,
    griewank,
    make_task,
    push_surrogate,
    rastrigin,
    rosenbrock,
    rover_surrogate,
)


class TestFunctions:
    def test_global_minima(self):
        assert ackley(np.zeros(10)) == pytest.approx(0.0, abs=1e-9)
        assert rastrigin(np.zeros(10)) == pytest.approx(0.0, abs=1e-9)
        assert griewank(np.zeros(10)) == pytest.approx(0.0, abs=1e-9)
        assert rosenbrock(np.ones(10)) == pytest.approx(0.0, abs=1e-9)

    def test_positive_away_from_optimum(self, rng):
        for name, (fn, (lo, hi)) in SYNTHETIC_FUNCTIONS.items():
            x = lo + (hi - lo) * rng.random(8)
            assert fn(x) >= 0.0 or name == "rosenbrock"

    def test_make_task_maps_unit_box(self):
        task = make_task("rastrigin", 5)
        # rastrigin domain is [-5.12, 5.12]: u = 0.5 maps to the origin
        assert task(np.full(5, 0.5)) == pytest.approx(0.0, abs=1e-9)

    def test_task_name(self):
        assert make_task("ackley", 20).__name__ == "ackley20"


class TestSurrogates:
    def test_push_sparse_reward_structure(self):
        task = push_surrogate(dim=8, seed=0)
        rng = np.random.default_rng(0)
        vals = np.array([task(rng.random(8)) for _ in range(200)])
        # most random points sit on the flat plateau; the basin is rare/deep
        assert np.median(vals) > vals.min() + 1.0

    def test_rover_best_bounded_by_five(self):
        task = rover_surrogate(dim=20, seed=0)
        assert task(np.random.default_rng(0).random(20)) >= -5.0

    def test_deterministic(self):
        t1, t2 = push_surrogate(seed=3), push_surrogate(seed=3)
        x = np.full(14, 0.4)
        assert t1(x) == t2(x)


class TestFlagSelection:
    @pytest.fixture(scope="class")
    def flag_task(self):
        return FlagSelectionTask(platform="arm-a57", seed=0)

    def test_dimension_matches_o3_pipeline(self, flag_task):
        from repro.compiler.pipelines import pipeline

        assert flag_task.dim == len(pipeline("-O3"))

    def test_decode_threshold(self, flag_task):
        u = np.zeros(flag_task.dim)
        u[0] = 0.9
        assert flag_task.decode(u) == [flag_task.flags[0]]

    def test_all_on_equals_o3(self, flag_task):
        base = flag_task.baseline_o3()
        assert base > 0

    def test_caching_by_bit_pattern(self, flag_task):
        u = np.zeros(flag_task.dim)
        u[::2] = 0.7  # a pattern no other test evaluates
        n0 = flag_task.n_evaluations
        v1 = flag_task(u)
        v2 = flag_task(np.clip(u + 0.1, 0, 0.95))  # same decode
        assert v1 == v2
        assert flag_task.n_evaluations == n0 + 1

    def test_disabling_everything_is_slower(self, flag_task):
        off = flag_task(np.zeros(flag_task.dim))
        on = flag_task.baseline_o3()
        assert off > on
