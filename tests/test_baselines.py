"""Tests for the baseline tuners."""

import numpy as np
import pytest

from repro.baselines import BOCATuner, EnsembleTuner, GATuner, RandomSearchTuner
from repro.core import AutotuningTask
from repro.workloads import cbench_program


@pytest.fixture(scope="module")
def task():
    return AutotuningTask(
        cbench_program("security_sha"), platform="arm-a57", seed=7, seq_length=16
    )


@pytest.mark.parametrize("cls", [RandomSearchTuner, GATuner, EnsembleTuner, BOCATuner])
def test_baseline_runs_and_records(task, cls):
    res = cls(task, seed=1).tune(12)
    assert len(res.measurements) == 12
    assert res.tuner == cls.name
    assert res.o3_runtime == task.o3_runtime
    assert (res.best_history[1:] <= res.best_history[:-1] + 1e-15).all()
    assert all(m.correct for m in res.measurements)


def test_round_robin_covers_modules():
    t = AutotuningTask(
        cbench_program("telecom_gsm"), platform="arm-a57", seed=2, seq_length=16
    )
    res = RandomSearchTuner(t, seed=0).tune(8)
    touched = {m.module for m in res.measurements}
    assert touched == set(t.hot_modules)


def test_ga_tuner_feeds_population(task):
    tuner = GATuner(task, seed=3)
    tuner.tune(10)
    assert any(len(ga.pop_x) > 0 for ga in tuner.gas.values())


def test_ensemble_bandit_tracks_pulls(task):
    tuner = EnsembleTuner(task, seed=4)
    tuner.tune(12)
    assert sum(tuner.pulls.values()) == 12


def test_boca_builds_model_after_warmup(task):
    tuner = BOCATuner(task, seed=5, n_init=4)
    tuner.tune(10)
    assert all(len(y) > 0 for _, y in tuner.data.values())


def test_seeded_runs_reproducible():
    t1 = AutotuningTask(cbench_program("security_sha"), platform="arm-a57", seed=7, seq_length=16)
    t2 = AutotuningTask(cbench_program("security_sha"), platform="arm-a57", seed=7, seq_length=16)
    r1 = RandomSearchTuner(t1, seed=9).tune(8)
    r2 = RandomSearchTuner(t2, seed=9).tune(8)
    assert np.allclose(r1.runtimes, r2.runtimes)
