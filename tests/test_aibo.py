"""Tests for AIBO, BOGrad, TuRBO, HeSBO and the random forest."""

import numpy as np
import pytest

from repro.bo import AIBO, BOGrad, HeSBO, RandomForestRegressor, TuRBO
from repro.synthetic import make_task


def sphere(x):
    return float(((np.asarray(x) - 0.35) ** 2).sum())


class TestAIBO:
    def test_improves_over_initial_design(self):
        opt = AIBO(6, seed=0, n_init=10, k=30)
        res = opt.minimize(sphere, 40)
        assert res.best_y < res.y[:10].min()
        assert len(res.y) == 40
        assert res.best_history[-1] == res.y.min()

    def test_diagnostics_populated(self):
        opt = AIBO(4, seed=0, n_init=8, k=20)
        res = opt.minimize(sphere, 20)
        d = res.diagnostics
        n_iter = len(d["winner"])
        assert n_iter > 0
        assert set(d["winner"]) <= {"cmaes", "ga", "random"}
        assert len(d["af_values"]) == n_iter
        assert all(set(v) == {"cmaes", "ga", "random"} for v in d["af_values"])

    def test_batch_mode_counts(self):
        opt = AIBO(4, seed=0, n_init=6, k=20, batch_size=5)
        res = opt.minimize(sphere, 26)
        assert len(res.y) == 26

    def test_maximizer_none_variant(self):
        opt = AIBO(4, seed=0, n_init=6, k=20, maximizer="none")
        res = opt.minimize(sphere, 16)
        assert len(res.y) == 16

    def test_single_strategy_variants(self):
        for strat in (("ga",), ("cmaes",), ("random",)):
            opt = AIBO(3, seed=0, n_init=5, k=15, strategies=strat)
            res = opt.minimize(sphere, 12)
            assert len(res.y) == 12

    def test_alternative_init_strategies(self):
        for strat in ("boltzmann", "gaussian-spray", "cmaes-on-af"):
            opt = AIBO(3, seed=0, n_init=5, k=10, strategies=(strat,))
            res = opt.minimize(sphere, 10)
            assert len(res.y) == 10

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError):
            AIBO(3, strategies=("simulated-annealing",))

    def test_different_afs(self):
        for af in ("ucb", "ei", "pi"):
            opt = AIBO(3, seed=0, n_init=5, k=10, af=af)
            res = opt.minimize(sphere, 12)
            assert len(res.y) == 12

    def test_callback_invoked(self):
        seen = []
        opt = AIBO(3, seed=0, n_init=4, k=10)
        opt.minimize(sphere, 10, callback=lambda i, x, y: seen.append(i))
        assert seen and seen[-1] == 10

    def test_reproducible_with_seed(self):
        r1 = AIBO(3, seed=99, n_init=5, k=10).minimize(sphere, 12)
        r2 = AIBO(3, seed=99, n_init=5, k=10).minimize(sphere, 12)
        assert np.allclose(r1.y, r2.y)

    def test_aibo_beats_pure_random_sampling_on_ackley(self):
        task = make_task("ackley", 10)
        res = AIBO(10, seed=1, n_init=15, k=40, refit_every=2).minimize(task, 80)
        rng = np.random.default_rng(1)
        rand_best = min(task(x) for x in rng.random((80, 10)))
        assert res.best_y < rand_best


class TestBOGrad:
    def test_is_random_only(self):
        bo = BOGrad(4, seed=0, n_init=5)
        assert list(bo.optimizers) == ["random"]
        res = bo.minimize(sphere, 12)
        assert len(res.y) == 12


class TestTuRBO:
    def test_runs_and_improves(self):
        res = TuRBO(6, seed=0, n_init=10).minimize(sphere, 40)
        assert len(res.y) == 40
        assert res.best_y < res.y[:10].min()

    def test_restart_on_collapse(self):
        # tiny tolerance forces shrinkage; should never error or stall
        t = TuRBO(3, seed=0, n_init=5, length_init=0.1, length_min=0.05, fail_tol=1)
        res = t.minimize(sphere, 30)
        assert len(res.y) == 30


class TestHeSBO:
    def test_embedding_dimensions(self):
        h = HeSBO(50, low_dim=6, seed=0, n_init=5)
        z = np.random.default_rng(0).random(6)
        x = h.lift(z)
        assert x.shape == (50,)
        assert (x >= 0).all() and (x <= 1).all()

    def test_minimize_runs(self):
        h = HeSBO(20, low_dim=4, seed=0, n_init=5, k=20)
        res = h.minimize(sphere, 15)
        assert len(res.y) == 15
        assert res.X.shape == (15, 20)


class TestRandomForest:
    def test_fits_step_function(self, rng):
        X = rng.random((200, 2))
        y = (X[:, 0] > 0.5).astype(float) * 10
        rf = RandomForestRegressor(n_trees=10, seed=0).fit(X, y)
        mu, _ = rf.predict(np.array([[0.9, 0.5], [0.1, 0.5]]))
        assert mu[0] > 8 and mu[1] < 2

    def test_uncertainty_zero_on_constant(self, rng):
        X = rng.random((50, 2))
        y = np.full(50, 3.0)
        rf = RandomForestRegressor(n_trees=5, seed=0).fit(X, y)
        mu, sigma = rf.predict(X[:5])
        assert np.allclose(mu, 3.0)
        assert np.allclose(sigma, 0.0)

    def test_uncertainty_positive_off_distribution(self, rng):
        X = rng.random((100, 2))
        y = X[:, 0] * 5 + rng.standard_normal(100) * 0.1
        rf = RandomForestRegressor(n_trees=15, seed=0).fit(X, y)
        _, sigma = rf.predict(rng.random((10, 2)))
        assert sigma.mean() > 0

    def test_respects_min_samples_leaf(self, rng):
        X = rng.random((20, 1))
        y = rng.standard_normal(20)
        rf = RandomForestRegressor(n_trees=3, min_samples_leaf=10, seed=0).fit(X, y)
        # with huge leaves, predictions are coarse averages
        mu, _ = rf.predict(X)
        assert len(np.unique(np.round(mu, 6))) <= 8
