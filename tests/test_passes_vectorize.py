"""Vectoriser tests, including the paper's Fig 5.1 / Table 5.1 behaviour."""

import pytest

from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import Const, GlobalVar, I16, I32, I64, Module, PTR
from repro.compiler.opt_tool import run_opt
from repro.compiler.pass_manager import TargetInfo
from repro.machine.interp import run_program

from tests.conftest import build_dot_kernel, build_sum_loop_module


def _check(mod, seq, target=None):
    ref = run_program([mod]).output_signature()
    cr = run_opt(mod, seq, verify_each=True, target=target)
    out = run_program([cr.module]).output_signature()
    assert out == ref, f"{seq} changed semantics: {out} vs {ref}"
    return cr


def _nvi(cr):
    return cr.stats.get("slp-vectorizer", "NumVectorInstructions")


class TestSLPReduction:
    """The motivating example: Fig 5.1 / Table 5.1 row behaviour."""

    def test_mem2reg_then_slp_vectorises(self):
        cr = _check(build_dot_kernel(), ["mem2reg", "slp-vectorizer"])
        assert _nvi(cr) > 0
        assert cr.stats.get("slp-vectorizer", "NumVecBundle") >= 1

    def test_slp_before_mem2reg_finds_nothing(self):
        cr = _check(build_dot_kernel(), ["slp-vectorizer", "mem2reg"])
        assert _nvi(cr) == 0

    def test_instcombine_between_kills_vectorisation(self):
        cr = _check(build_dot_kernel(), ["mem2reg", "instcombine", "slp-vectorizer"])
        assert cr.stats.get("instcombine", "NumWidened") > 0
        assert _nvi(cr) == 0
        assert cr.stats.get("slp-vectorizer", "NumUnprofitable") >= 1

    def test_instcombine_after_slp_is_harmless(self):
        cr = _check(build_dot_kernel(), ["mem2reg", "slp-vectorizer", "instcombine"])
        assert _nvi(cr) > 0

    def test_i64_lanes_unprofitable_on_narrow_vectors(self):
        # direct i64 multiply chain: only 2 lanes fit 128-bit -> rejected
        mod = build_dot_kernel(acc_ty=I64, mul_ty=I64, elem_ty=I16)
        cr = _check(mod, ["mem2reg", "slp-vectorizer"], target=TargetInfo(vector_bits=128))
        assert _nvi(cr) == 0

    def test_wide_registers_change_profitability(self):
        # i64 lanes become profitable with 512-bit registers (8 lanes)
        mod = build_dot_kernel(acc_ty=I64, mul_ty=I64, elem_ty=I16)
        cr = _check(mod, ["mem2reg", "slp-vectorizer"], target=TargetInfo(vector_bits=512))
        assert _nvi(cr) > 0

    def test_reduction_value_correct(self):
        cr = _check(build_dot_kernel(), ["mem2reg", "slp-vectorizer"])
        r = run_program([cr.module])
        assert r.ret == sum((i + 1) * (2 * i + 1) for i in range(8))

    def test_store_between_loads_blocks_slp(self):
        mod = Module("m")
        mod.add_global(GlobalVar("w", I16, [1] * 8))
        mod.add_global(GlobalVar("d", I16, [2] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        w, d = b.gaddr("w"), b.gaddr("d")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)
        for i in range(8):
            wv = b.load(I16, b.gep(w, c(i, I64), I16))
            dv = b.load(I16, b.gep(d, c(i, I64), I16))
            if i == 4:  # a store into one of the loaded arrays mid-pattern
                b.store(c(9, I16), b.gep(w, c(0, I64), I16))
            m = b.mul(b.sext(wv, I32), b.sext(dv, I32), I32)
            cur = b.load(I32, acc)
            b.store(b.add(cur, m, I32), acc)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "slp-vectorizer"])
        assert _nvi(cr) == 0


class TestSLPStoreGroups:
    def _store_group_module(self):
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(8))))
        mod.add_global(GlobalVar("bg", I32, [3] * 8))
        mod.add_global(GlobalVar("out", I32, [0] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        a, bb_, out = b.gaddr("a"), b.gaddr("bg"), b.gaddr("out")
        for i in range(8):
            x = b.load(I32, b.gep(a, c(i, I64), I32))
            y = b.load(I32, b.gep(bb_, c(i, I64), I32))
            b.store(b.add(x, y, I32), b.gep(out, c(i, I64), I32))
        res = b.load(I32, b.gep(out, c(7, I64), I32))
        b.output(res)
        b.ret(res)
        return mod

    def test_parallel_adds_packed(self):
        cr = _check(self._store_group_module(), ["slp-vectorizer"])
        assert _nvi(cr) > 0
        assert run_program([cr.module]).ret == 10

    def test_aliased_destination_blocks_packing(self):
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(16))))
        b = FunctionBuilder(mod, "main", [], I32)
        a = b.gaddr("a")
        a8 = b.gep(a, c(8, I64), I32)
        for i in range(8):
            x = b.load(I32, b.gep(a, c(i, I64), I32))
            y = b.load(I32, b.gep(a, c(i, I64), I32))
            b.store(b.add(x, y, I32), b.gep(a8, c(i, I64), I32))
        res = b.load(I32, b.gep(a, c(15, I64), I32))
        b.output(res)
        b.ret(res)
        # dst (gep of a) and src (a) cannot be proven disjoint -> no packing
        cr = _check(mod, ["slp-vectorizer"])
        assert _nvi(cr) == 0


class TestLoopVectorize:
    def _saxpy(self, n=16):
        mod = Module("m")
        mod.add_global(GlobalVar("x", I32, list(range(n))))
        mod.add_global(GlobalVar("y", I32, [5] * n))
        mod.add_global(GlobalVar("out", I32, [0] * n))
        b = FunctionBuilder(mod, "main", [], I32)
        x, y, out = b.gaddr("x"), b.gaddr("y"), b.gaddr("out")

        def body(bb, i):
            xv = bb.load(I32, bb.gep(x, i, I32))
            yv = bb.load(I32, bb.gep(y, i, I32))
            bb.store(bb.add(bb.mul(xv, c(3, I32), I32), yv, I32), bb.gep(out, i, I32))

        b.counted_loop(c(0, I32), c(n, I32), body)
        res = b.load(I32, b.gep(out, c(n - 1, I64), I32))
        b.output(res)
        b.ret(res)
        return mod

    def test_vectorises_saxpy(self):
        cr = _check(self._saxpy(), ["mem2reg", "loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 1
        assert run_program([cr.module]).ret == 15 * 3 + 5

    def test_requires_mem2reg(self):
        cr = _check(self._saxpy(), ["loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 0

    def test_non_divisible_trip_count_rejected(self):
        cr = _check(self._saxpy(n=15), ["mem2reg", "loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 0

    def test_reduction_loop(self, sum_loop_module):
        cr = _check(sum_loop_module, ["mem2reg", "loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 1
        assert run_program([cr.module]).ret == sum(range(1, 17))

    def test_reduction_unprofitable_on_wide_elems(self):
        # i64 accumulator: 2 lanes on 128-bit -> below min_vector_lanes
        mod = Module("m")
        mod.add_global(GlobalVar("data", I64, list(range(16))))
        b = FunctionBuilder(mod, "main", [], I64)
        arr = b.gaddr("data")
        acc = b.alloca(I64)
        b.store(c(0, I64), acc)

        def body(bb, i):
            v = bb.load(I64, bb.gep(arr, i, I64))
            cur = bb.load(I64, acc)
            bb.store(bb.add(cur, v, I64), acc)

        b.counted_loop(c(0, I32), c(16, I32), body)
        out = b.load(I64, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-vectorize"], target=TargetInfo(vector_bits=128))
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 0
        assert cr.stats.get("loop-vectorize", "NumUnprofitable") == 1

    def test_stencil_offsets_rejected(self):
        # src[i-1] style indexing must block the strict-legality vectoriser
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(18))))
        mod.add_global(GlobalVar("o", I32, [0] * 18))
        b = FunctionBuilder(mod, "main", [], I32)
        a, o = b.gaddr("a"), b.gaddr("o")

        def body(bb, i):
            im1 = bb.sub(i, c(1, I32), I32)
            v = bb.load(I32, bb.gep(a, im1, I32))
            bb.store(v, bb.gep(o, i, I32))

        b.counted_loop(c(1, I32), c(17, I32), body)
        res = b.load(I32, b.gep(o, c(8, I64), I32))
        b.output(res)
        b.ret(res)
        cr = _check(mod, ["mem2reg", "loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 0

    def test_call_in_body_rejected(self):
        mod = Module("m")
        g = FunctionBuilder(mod, "helper", [("v", I32)], I32)
        g.ret(g.add("v", c(1, I32), I32))
        mod.add_global(GlobalVar("a", I32, list(range(8))))
        b = FunctionBuilder(mod, "main", [], I32)
        a = b.gaddr("a")
        acc = b.alloca(I32)
        b.store(c(0, I32), acc)

        def body(bb, i):
            v = bb.load(I32, bb.gep(a, i, I32))
            h = bb.call("helper", [v], I32)
            cur = bb.load(I32, acc)
            bb.store(bb.add(cur, h, I32), acc)

        b.counted_loop(c(0, I32), c(8, I32), body)
        out = b.load(I32, acc)
        b.output(out)
        b.ret(out)
        cr = _check(mod, ["mem2reg", "loop-vectorize"])
        assert cr.stats.get("loop-vectorize", "LoopsVectorized") == 0


class TestVectorCombine:
    def test_extract_of_broadcast_scalarised(self):
        from repro.compiler.ir import Instr, vec

        mod = Module("m")
        mod.add_global(GlobalVar("g", I32, [6]))
        b = FunctionBuilder(mod, "main", [], I32)
        v = b.load(I32, b.gaddr("g"))
        v4 = vec(I32, 4)
        bc = b._emit("broadcast", v4, (v,))
        ext = b._emit("extract", I32, (bc, c(1, I64)))
        b.output(ext)
        b.ret(ext)
        cr = _check(mod, ["vector-combine", "dce"])
        assert cr.stats.get("vector-combine", "NumScalarized") == 1
        assert sum(1 for i in cr.module.functions["main"].instructions() if i.op == "broadcast") == 0


class TestSLPRegressions:
    def test_duplicate_store_offsets_no_crash(self):
        """Two stores to the same offset used to crash the store-group
        sorter (Instr is not orderable); they must simply not be packed."""
        mod = Module("m")
        mod.add_global(GlobalVar("a", I32, list(range(8))))
        mod.add_global(GlobalVar("o", I32, [0] * 8))
        b = FunctionBuilder(mod, "main", [], I32)
        a, o = b.gaddr("a"), b.gaddr("o")
        for i in [0, 1, 2, 2, 3]:  # duplicate offset 2
            x = b.load(I32, b.gep(a, c(i, I64), I32))
            y = b.load(I32, b.gep(a, c(i, I64), I32))
            b.store(b.add(x, y, I32), b.gep(o, c(i, I64), I32))
        res = b.load(I32, b.gep(o, c(2, I64), I32))
        b.output(res)
        b.ret(res)
        cr = _check(mod, ["slp-vectorizer"])
        assert _nvi(cr) == 0  # non-consecutive offsets: nothing packed
