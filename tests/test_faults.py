"""Tests for the fault-tolerant evaluation subsystem.

Covers:

* ``FaultInjector`` — deterministic per-key fault assignment at a fixed
  seed, rate extremes, kind parsing, and the miscompile corruptor;
* ``CompileEngine`` fault paths — crash mid-batch without dropping
  sibling results or skewing counters, per-candidate timeout, bounded
  retry-with-backoff, quarantine storage and hits, and the legacy raising
  interface (bookkeeping first, raise after);
* ``AutotuningTask`` degradation — measurement crashes become infeasible
  verdicts, failure verdicts are cached (known-bad configs are never
  re-measured), context-manager lifecycle, env-driven chaos construction;
* end-to-end — ``Citroen.tune`` and a baseline complete their full budget
  at a 5% fault rate, report nonzero fault counters, keep a best config
  that passes differential testing, and reproduce bit-identical
  measurement histories under the same fault seed.
"""

import time

import numpy as np
import pytest

from repro import (
    AutotuningTask,
    Citroen,
    CompileEngine,
    FaultInjector,
    cbench_program,
    differential_test,
)
from repro.baselines import RandomSearchTuner
from repro.cli import main
from repro.core.eval_engine import CompileError
from repro.core.faults import (
    FAULT_KINDS,
    CompilerCrash,
    TransientCompileError,
    corrupt_module,
    parse_fault_kinds,
)
from repro.machine.interp import FuelExhausted, InterpError


class TestFaultInjector:
    def test_deterministic_at_fixed_seed(self):
        a = FaultInjector(rate=0.3, seed=5)
        b = FaultInjector(rate=0.3, seed=5)
        keys = [("m", [i, i + 1]) for i in range(200)]
        fa = [a.fault_for(n, s) for n, s in keys]
        fb = [b.fault_for(n, s) for n, s in keys]
        assert fa == fb
        assert any(f is not None for f in fa)
        # repeated queries for the same key never change their answer
        assert [a.fault_for(n, s) for n, s in keys] == fa

    def test_different_seed_different_faults(self):
        a = FaultInjector(rate=0.3, seed=5)
        b = FaultInjector(rate=0.3, seed=6)
        keys = [("m", [i]) for i in range(200)]
        assert [a.fault_for(n, s) for n, s in keys] != [
            b.fault_for(n, s) for n, s in keys
        ]

    def test_rate_extremes(self):
        off = FaultInjector(rate=0.0, seed=0)
        on = FaultInjector(rate=1.0, seed=0)
        for i in range(50):
            assert off.fault_for("m", [i]) is None
            assert on.fault_for("m", [i]) in FAULT_KINDS

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(kinds=("segfault",))

    def test_parse_fault_kinds(self):
        assert parse_fault_kinds("none") == ()
        assert parse_fault_kinds("") == ()
        assert parse_fault_kinds("all") == FAULT_KINDS
        assert parse_fault_kinds("crash, transient") == ("crash", "transient")
        with pytest.raises(ValueError):
            parse_fault_kinds("crash,segfault")

    def test_crash_and_transient_wrapping(self):
        inj = FaultInjector(
            rate=1.0, kinds=("crash",), seed=1, transient_failures=2
        )
        fn = inj.wrap(lambda n, s: "compiled")
        with pytest.raises(CompilerCrash):
            fn("m", [0])
        with pytest.raises(CompilerCrash):  # crashes are deterministic
            fn("m", [0])

        tr = FaultInjector(rate=1.0, kinds=("transient",), seed=1, transient_failures=2)
        fn = tr.wrap(lambda n, s: "compiled")
        with pytest.raises(TransientCompileError):
            fn("m", [0])
        with pytest.raises(TransientCompileError):
            fn("m", [0])
        assert fn("m", [0]) == "compiled"  # third attempt succeeds

    def test_fault_free_keys_pass_through(self):
        inj = FaultInjector(rate=0.0, seed=0)
        fn = inj.wrap(lambda n, s: (n, tuple(s)))
        assert fn("m", [1, 2]) == ("m", (1, 2))
        assert inj.stats() == {k: 0 for k in FAULT_KINDS}


class TestEngineFaultPaths:
    def test_crash_mid_batch_keeps_siblings_and_counters(self):
        def compile_fn(name, seq):
            if seq[0] == 3:
                raise RuntimeError("boom")
            return tuple(seq)

        eng = CompileEngine(
            compile_fn, jobs=4, executor="thread", max_retries=1, retry_backoff=0.001
        )
        items = [("m", [i]) for i in range(8)]
        outs = eng.compile_batch(items, outcomes=True)
        eng.close()
        # siblings survive, in input order
        for i, o in enumerate(outs):
            if i == 3:
                assert o.status == "error" and not o.ok
                assert "boom" in o.error
                assert o.attempts == 2  # first try + one retry
            else:
                assert o.ok and o.value == (i,)
        assert eng.misses == 8
        assert eng.n_compiles == 7  # failed candidate is not a compile
        assert eng.n_failures == 1
        assert eng.n_retries == 1
        assert eng.quarantine_size == 1

    def test_quarantine_serves_stored_failure(self):
        calls = []

        def compile_fn(name, seq):
            calls.append(tuple(seq))
            raise RuntimeError("always")

        eng = CompileEngine(compile_fn, jobs=1, max_retries=1, retry_backoff=0.001)
        first = eng.compile_one("m", [0], outcomes=True)
        assert first.status == "error"
        assert len(calls) == 2  # original + retry
        assert eng.in_quarantine("m", [0])
        again = eng.compile_one("m", [0], outcomes=True)
        assert again.status == "quarantined"
        assert again.attempts == 0
        assert len(calls) == 2  # never recompiled
        assert eng.quarantine_hits == 1
        assert eng.n_failures == 1  # counted once, not per request

    def test_retry_backoff_recovers_transient(self):
        attempts = {}

        def flaky(name, seq):
            k = tuple(seq)
            attempts[k] = attempts.get(k, 0) + 1
            if attempts[k] <= 2:
                raise RuntimeError("transient")
            return "ok"

        eng = CompileEngine(flaky, jobs=1, max_retries=2, retry_backoff=0.001)
        out = eng.compile_one("m", [0], outcomes=True)
        assert out.ok and out.value == "ok"
        assert out.attempts == 3
        assert eng.n_retries == 2
        assert eng.n_failures == 0
        assert not eng.in_quarantine("m", [0])
        # cached now: no further attempts
        assert eng.compile_one("m", [0]) == "ok"
        assert attempts[(0,)] == 3

    def test_insufficient_retries_quarantine(self):
        inj = FaultInjector(rate=1.0, kinds=("transient",), seed=0, transient_failures=3)
        eng = CompileEngine(
            inj.wrap(lambda n, s: "ok"), jobs=1, max_retries=1, retry_backoff=0.001
        )
        out = eng.compile_one("m", [0], outcomes=True)
        assert out.status == "error"
        assert eng.in_quarantine("m", [0])

    def test_timeout_path_and_quarantine(self):
        def compile_fn(name, seq):
            if seq[0] == 1:
                time.sleep(0.5)
            return tuple(seq)

        eng = CompileEngine(compile_fn, jobs=2, executor="thread", timeout=0.1)
        outs = eng.compile_batch([("m", [0]), ("m", [1]), ("m", [2])], outcomes=True)
        assert outs[0].ok and outs[2].ok  # siblings rescued from the hung pool
        assert outs[1].status == "timeout"
        assert eng.n_timeouts == 1
        assert eng.in_quarantine("m", [1])
        again = eng.compile_one("m", [1], outcomes=True)
        assert again.status == "quarantined"
        assert eng.quarantine_hits == 1
        eng.close()

    def test_timeout_with_serial_jobs(self):
        def compile_fn(name, seq):
            if seq[0] == 0:
                time.sleep(0.5)
            return tuple(seq)

        # enforcing a timeout at jobs=1 routes through a worker thread; a
        # hung first candidate must not starve the rest of the batch
        eng = CompileEngine(compile_fn, jobs=1, timeout=0.1)
        outs = eng.compile_batch([("m", [0]), ("m", [1]), ("m", [2])], outcomes=True)
        assert outs[0].status == "timeout"
        assert outs[1].ok and outs[2].ok
        eng.close()

    def test_legacy_interface_raises_after_bookkeeping(self):
        def compile_fn(name, seq):
            if seq[0] == 1:
                raise RuntimeError("boom")
            return tuple(seq)

        eng = CompileEngine(compile_fn, jobs=1, max_retries=0)
        with pytest.raises(CompileError):
            eng.compile_batch([("m", [0]), ("m", [1]), ("m", [2])])
        # the raise happened after the whole batch ran: siblings are
        # cached and every counter is consistent
        assert eng.n_compiles == 2
        assert eng.n_failures == 1
        assert eng.compile_one("m", [0]) == (0,)
        assert eng.hits == 1  # served from cache

    def test_context_manager_closes_pool(self):
        with CompileEngine(lambda n, s: tuple(s), jobs=2, executor="thread") as eng:
            assert eng.compile_batch([("m", [i]) for i in range(4)]) == [
                (i,) for i in range(4)
            ]
            assert eng._pool is not None
        assert eng._pool is None


@pytest.fixture(scope="module")
def sha_task():
    return AutotuningTask(
        cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=8
    )


class TestTaskDegradation:
    def test_measure_crash_is_infeasible_verdict(self):
        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=8
        )

        def boom(*a, **k):
            raise InterpError("injected crash")

        task.profiler.measure = boom
        value, ok = task.measure({}, config_key=("crashcfg",))
        assert not ok
        assert value == task.penalty_runtime
        assert np.isfinite(value)
        assert task.n_crashes == 1
        assert task.last_failure == "crash"
        # the failure verdict is cached: a revisit never re-measures
        n = task.n_measurements
        value2, ok2 = task.measure({}, config_key=("crashcfg",))
        assert (value2, ok2) == (value, False)
        assert task.n_measurements == n
        assert task.n_crashes == 1
        task.close()

    def test_fuel_exhausted_is_caught_too(self, sha_task):
        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=8
        )

        def spin(*a, **k):
            raise FuelExhausted("fuel exhausted in @main")

        task.profiler.measure = spin
        value, ok = task.measure({})
        assert not ok and value == task.penalty_runtime
        task.close()

    def test_miscompile_verdict_cached(self, sha_task):
        task = sha_task
        name = task.hot_modules[0]
        mod, stats = task.compile_module(name, [0] * 8)
        bad, _ = corrupt_module((mod, stats))
        n = task.n_measurements
        value, ok = task.measure({name: bad}, config_key=("badcfg",))
        assert not ok
        assert task.last_failure == "incorrect"
        value2, ok2 = task.measure({name: bad}, config_key=("badcfg",))
        assert (value2, ok2) == (value, False)
        assert task.n_measurements == n + 1  # second call was a cache hit

    def test_corrupt_module_changes_output(self, sha_task):
        task = sha_task
        name = task.hot_modules[0]
        mod, stats = task.compile_module(name, [0] * 8)
        bad, bad_stats = corrupt_module((mod, stats))
        assert bad_stats == stats
        assert bad.num_instrs() > mod.num_instrs()
        assert mod.num_instrs() == task.compile_module(name, [0] * 8)[0].num_instrs(), (
            "corruption must not mutate the cached module"
        )
        _, ok = task.measure({name: bad})
        assert not ok

    def test_measure_config_with_quarantined_candidate(self):
        inj = FaultInjector(rate=1.0, kinds=("crash",), seed=0)
        task = AutotuningTask(
            cbench_program("security_sha"),
            platform="arm-a57",
            seed=0,
            seq_length=8,
            fault_injector=inj,
            compile_retries=0,
        )
        value, ok = task.measure_config({task.hot_modules[0]: [0] * 8})
        assert not ok and value == task.penalty_runtime
        assert task.engine.n_failures == 1
        # revisit: served from quarantine, not recompiled
        value2, ok2 = task.measure_config({task.hot_modules[0]: [0] * 8})
        assert (value2, ok2) == (value, ok)
        assert task.engine.n_failures == 1
        assert task.engine.quarantine_hits >= 1
        task.close()

    def test_task_context_manager(self):
        with AutotuningTask(
            cbench_program("security_sha"),
            platform="arm-a57",
            seed=0,
            seq_length=8,
            jobs=2,
        ) as task:
            task.compile_batch([(task.hot_modules[0], [i] * 8) for i in range(4)])
            assert task.engine._pool is not None
        assert task.engine._pool is None

    def test_env_chaos_builds_injector(self, monkeypatch):
        monkeypatch.setenv("REPRO_INJECT_FAULTS", "crash,transient")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        task = AutotuningTask(
            cbench_program("security_sha"), platform="arm-a57", seed=0, seq_length=8
        )
        assert task.fault_injector is not None
        assert task.fault_injector.kinds == ("crash", "transient")
        assert task.fault_injector.rate == 0.5
        assert task.fault_injector.seed == 9
        task.close()

    def test_env_chaos_ignored_when_unset(self, monkeypatch, sha_task):
        monkeypatch.delenv("REPRO_INJECT_FAULTS", raising=False)
        assert sha_task.fault_injector is None


def _chaos_tune(fault_seed, budget=15):
    # hang_seconds is well above compile_timeout, and compile_timeout is
    # well above a real compile (~ms): injected hangs always trip the
    # timeout, legitimate compiles never do, even on a loaded machine —
    # a prerequisite for the same-seed determinism assertion below.
    inj = FaultInjector(rate=0.05, seed=fault_seed, hang_seconds=0.4)
    task = AutotuningTask(
        cbench_program("telecom_gsm"),
        platform="arm-a57",
        seed=0,
        seq_length=12,
        fault_injector=inj,
        compile_timeout=0.1,
    )
    try:
        res = Citroen(task, seed=7, n_init=3, per_strategy=2).tune(budget)
        return task, res, dict(task.timing_breakdown())
    finally:
        task.close()


class TestChaosEndToEnd:
    def test_citroen_survives_5pct_fault_rate(self):
        task, res, tb = _chaos_tune(fault_seed=11)
        # the run completed its full budget despite crashes/hangs/miscompiles
        assert len(res.measurements) == 15
        assert tb["compile_failures"] > 0
        assert tb["compile_timeouts"] > 0
        assert tb["compile_retries"] > 0
        assert tb["quarantine_size"] > 0
        # the incumbent never absorbed an infeasible candidate
        assert np.isfinite(res.best_runtime)
        eq, detail = differential_test(
            task.program, {m: list(s) for m, s in res.best_config.items()}
        )
        assert eq, detail

    def test_same_fault_seed_identical_histories(self):
        _, r1, _ = _chaos_tune(fault_seed=11)
        _, r2, _ = _chaos_tune(fault_seed=11)
        h1 = [(m.module, m.sequence, m.runtime, m.correct, m.status) for m in r1.measurements]
        h2 = [(m.module, m.sequence, m.runtime, m.correct, m.status) for m in r2.measurements]
        assert h1 == h2

    def test_baseline_survives_crash_faults(self):
        inj = FaultInjector(rate=0.3, kinds=("crash",), seed=2)
        task = AutotuningTask(
            cbench_program("security_sha"),
            platform="arm-a57",
            seed=0,
            seq_length=8,
            fault_injector=inj,
            compile_retries=0,
        )
        res = RandomSearchTuner(task, seed=3).tune(10)
        task.close()
        assert len(res.measurements) == 10
        assert res.n_infeasible > 0
        infeasible = [m for m in res.measurements if not m.correct]
        assert all(np.isinf(m.runtime) for m in infeasible)
        assert all(m.status in ("error", "quarantined", "timeout") for m in infeasible)
        # feasible incumbents only
        assert np.isfinite(res.best_runtime)

    def test_cli_chaos_flags(self, capsys):
        rc = main(
            [
                "tune",
                "security_sha",
                "--budget", "8",
                "--seq-length", "8",
                "--inject-faults", "crash,hang,transient,miscompile",
                "--fault-rate", "0.2",
                "--fault-seed", "1",
                "--fault-hang-seconds", "0.15",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "faults" in out
        assert "injected" in out

    def test_cli_rejects_unknown_fault_kind(self):
        with pytest.raises(SystemExit):
            main(["tune", "security_sha", "--budget", "2", "--inject-faults", "segfault"])
