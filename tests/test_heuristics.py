"""Tests for the heuristic optimisers and genetic operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heuristics import (
    CMAES,
    ContinuousGA,
    DiscreteES,
    HillClimbing,
    PSO,
    RandomSearch,
    RandomSequenceSearch,
    SequenceGA,
    SequenceHillClimbing,
    SequenceSimulatedAnnealing,
)
from repro.heuristics.operators import (
    polynomial_mutation,
    sbx_crossover,
    seq_point_mutation,
    seq_two_point_crossover,
    tournament_select,
)


def sphere(x):
    return float(((x - 0.3) ** 2).sum())


def run_continuous(opt, budget=300, batch=10):
    for _ in range(budget // batch):
        X = opt.ask(batch)
        y = np.array([sphere(x) for x in X])
        opt.tell(X, y)
    return opt.best_y


def seq_objective(seq):
    """Minimised when the sequence matches a hidden target prefix."""
    target = np.arange(len(seq)) % 7
    return float((np.asarray(seq) != target).sum())


def run_sequence(opt, budget=300, batch=10):
    for _ in range(budget // batch):
        X = opt.ask(batch)
        y = np.array([seq_objective(x) for x in X])
        opt.tell(X, y)
    return opt.best_y


class TestOperators:
    @given(st.integers(0, 10**6))
    @settings(deadline=None, max_examples=25)
    def test_sbx_stays_in_unit_box(self, seed):
        rng = np.random.default_rng(seed)
        p1, p2 = rng.random(8), rng.random(8)
        c1, c2 = sbx_crossover(p1, p2, rng)
        for child in (c1, c2):
            assert (child >= 0).all() and (child <= 1).all()

    @given(st.integers(0, 10**6))
    @settings(deadline=None, max_examples=25)
    def test_polynomial_mutation_in_box(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.random(10)
        y = polynomial_mutation(x, rng)
        assert (y >= 0).all() and (y <= 1).all()

    @given(st.integers(0, 10**6))
    @settings(deadline=None, max_examples=25)
    def test_seq_mutation_changes_at_least_one_gene(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 40, size=12)
        y = seq_point_mutation(x, 40, rng)
        assert len(y) == len(x)
        assert ((y >= 0) & (y < 40)).all()

    def test_two_point_crossover_preserves_multiset_union(self):
        rng = np.random.default_rng(0)
        p1 = np.arange(10)
        p2 = np.arange(10, 20)
        c1, c2 = seq_two_point_crossover(p1, p2, rng)
        assert sorted(np.concatenate([c1, c2])) == sorted(np.concatenate([p1, p2]))

    def test_tournament_prefers_fitter(self):
        rng = np.random.default_rng(0)
        fitness = np.array([10.0, 0.1, 5.0, 8.0])
        idx = tournament_select(fitness, 500, rng)
        counts = np.bincount(idx, minlength=4)
        assert counts[1] == counts.max()


class TestContinuousOptimizers:
    def test_cmaes_converges_on_sphere(self):
        assert run_continuous(CMAES(8, seed=0)) < 0.05

    def test_ga_converges_on_sphere(self):
        assert run_continuous(ContinuousGA(8, seed=0)) < 0.1

    def test_pso_improves(self):
        assert run_continuous(PSO(8, seed=0)) < 0.2

    def test_hill_climbing_improves(self):
        assert run_continuous(HillClimbing(8, seed=0)) < 0.1

    def test_random_search_tracks_best(self):
        rs = RandomSearch(4, seed=0)
        best = run_continuous(rs, budget=100)
        assert best == rs.best_y and rs.best_x is not None

    def test_cmaes_ask_within_box(self):
        es = CMAES(5, seed=0)
        X = es.ask(50)
        assert (X >= 0).all() and (X <= 1).all()

    def test_cmaes_adapts_distribution(self):
        es = CMAES(4, seed=0, lam=8)
        sigma0 = es.sigma
        run_continuous(es, budget=160, batch=8)
        assert es.generation > 0
        assert es.sigma != sigma0

    def test_ga_population_capped(self):
        ga = ContinuousGA(4, pop_size=10, seed=0)
        run_continuous(ga, budget=100)
        assert len(ga.pop_x) == 10

    def test_ga_diversity_metric(self):
        ga = ContinuousGA(4, seed=0)
        assert ga.population_diversity() == 0.0
        run_continuous(ga, budget=60)
        assert ga.population_diversity() > 0.0


class TestSequenceOptimizers:
    def test_sequence_ga_beats_random(self):
        ga = run_sequence(SequenceGA(12, 10, seed=0))
        rnd = run_sequence(RandomSequenceSearch(12, 10, seed=0))
        assert ga <= rnd

    def test_des_improves_parent(self):
        des = DiscreteES(12, 10, seed=0)
        best = run_sequence(des)
        assert best < 12
        assert des.parent is not None
        assert seq_objective(des.parent) == des.best_y

    def test_des_seed_parent(self):
        des = DiscreteES(6, 5, seed=0)
        seed = np.zeros(6, dtype=int)
        des.seed_parent(seed)
        X = des.ask(10)
        # mutants stay close to the seeded parent
        assert (X != seed).sum(axis=1).max() <= 4

    def test_hill_climbing_sequences(self):
        assert run_sequence(SequenceHillClimbing(12, 10, seed=0)) < 12

    def test_simulated_annealing_runs(self):
        sa = SequenceSimulatedAnnealing(12, 10, seed=0)
        best = run_sequence(sa)
        assert best < 12
        assert sa.temperature < sa.t0

    def test_ask_shapes_and_ranges(self):
        for opt in (
            SequenceGA(8, 5, seed=0),
            DiscreteES(8, 5, seed=0),
            RandomSequenceSearch(8, 5, seed=0),
            SequenceHillClimbing(8, 5, seed=0),
        ):
            X = opt.ask(7)
            assert X.shape == (7, 8)
            assert ((X >= 0) & (X < 5)).all()

    def test_sequence_ga_diversity(self):
        ga = SequenceGA(8, 5, seed=0)
        run_sequence(ga, budget=60)
        assert ga.population_diversity() >= 0.0
