"""Differential sweep for fused superblock kernels.

The fusion pass (:mod:`repro.machine.fuse`) must be *observably invisible*:
for every program, every optimisation level and every fuel budget, the
fused VM produces bit-identical results — outputs, step counts, block
counts and ``FuelExhausted`` behaviour — to the unfused VM and the
reference tree walker.  This file sweeps that property over the bench
kernel families, cbench workloads at -O0/-O3, random programs under
hypothesis, and exact fuel budgets crossing every segment boundary of a
fused kernel.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import KERNEL_FAMILIES
from repro.compiler.opt_tool import run_opt
from repro.compiler.pipelines import SEARCH_PASSES, pipeline
from repro.machine.bytecode import OP_FUSED, BytecodeVM, compile_module
from repro.machine.fuse import NP_MIN_GROUP, fuse_module, fused_stats
from repro.machine.interp import FuelExhausted, run_program
from repro.workloads import cbench_program, random_program

_SETTINGS = dict(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_FUEL = 5_000_000


def _tri_engine_check(modules, entry, fuel=_FUEL):
    """tree vs unfused VM vs fused VM: identical signature/steps/counts."""
    tree = run_program(modules, entry, fuel=fuel)
    bcs = [compile_module(m) for m in modules]
    plain = BytecodeVM(bcs, fuel=fuel).run(entry)
    fused_bcs = [fuse_module(bm)[0] for bm in bcs]
    fused = BytecodeVM(fused_bcs, fuel=fuel).run(entry)
    assert tree.output_signature() == plain.output_signature()
    assert plain.output_signature() == fused.output_signature()
    assert tree.steps == plain.steps == fused.steps
    assert plain.block_counts == fused.block_counts
    return fused_bcs


@pytest.mark.parametrize("family", sorted(KERNEL_FAMILIES))
def test_kernel_families_bit_exact(family):
    mod = KERNEL_FAMILIES[family](200)
    _tri_engine_check([mod], "main")


@pytest.mark.parametrize("family", sorted(KERNEL_FAMILIES))
@pytest.mark.parametrize("level", ["-O1", "-O3"])
def test_kernel_families_optimized_bit_exact(family, level):
    mod = KERNEL_FAMILIES[family](150)
    opt = run_opt(mod, pipeline(level)).module
    _tri_engine_check([opt], "main")


@pytest.mark.parametrize("name", ["telecom_gsm", "security_sha"])
@pytest.mark.parametrize("level", ["-O0", "-O3"])
def test_cbench_bit_exact(name, level):
    prog = cbench_program(name)
    if level == "-O0":
        modules = list(prog.modules)
    else:
        modules = [run_opt(m, pipeline(level)).module for m in prog.modules]
    _tri_engine_check(modules, prog.entry, fuel=prog.fuel)


def test_fused_wide_uses_numpy_batches():
    """The wide-lane family really exercises the numpy vector path."""
    import repro.machine.fuse as fuse

    # the wide level has 64 independent lanes >= NP_MIN_GROUP
    assert 64 >= NP_MIN_GROUP
    mod = KERNEL_FAMILIES["fused_wide"](50)
    bm = compile_module(mod)
    fused, stats = fuse_module(bm)
    assert stats["kernels"] >= 1
    # the kernel cache is keyed by generated source: fusing this module
    # must have produced (or reused) a vector-batched kernel
    assert any("_np.array" in s for s in fuse._KERNEL_CACHE), (
        "no numpy-batched kernel source generated"
    )


# -- batch-cohort emission order ---------------------------------------------
#
# A numpy batch executes at its anchor (last member's position).  Program
# order can place a consumer of an early batch member *before* that anchor,
# or invert two groups' anchors relative to a cross-group dependence; both
# shapes once made the kernel gather a stale pre-kernel register value.  The
# cohort refinement must demote such members to scalar emission and stay
# bit-exact.


def _interleaved_consumer_module():
    """NP_MIN_GROUP independent level-1 adds with a level-2 consumer of the
    first add interleaved right after it — far before the group's anchor."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("m_interleaved")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(0, I64), acc)

    def body(bb, i):
        iw = bb.sext(i, I64)
        lanes = []
        consumer = None
        for k in range(NP_MIN_GROUP):
            lanes.append(bb.add(iw, c(k + 1, I64), I64))
            if k == 0:
                consumer = bb.add(lanes[0], lanes[0], I64)
        t = consumer
        for x in lanes:
            t = bb.add(t, x, I64)
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, t, I64), acc)

    b.counted_loop(c(0, I32), c(3, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


def _anchor_inversion_module():
    """A level-2 add group whose anchor precedes the level-1 mul group's
    anchor: a trailing consumer-free mul pushes the mul anchor past every
    add, so the adds' operand producers would emit after the adds."""
    from repro.compiler.builder import FunctionBuilder, c
    from repro.compiler.ir import I32, I64, Module

    mod = Module("m_inverted")
    b = FunctionBuilder(mod, "main", [], I64)
    acc = b.alloca(I64, hint="acc")
    b.store(c(0, I64), acc)

    def body(bb, i):
        iw = bb.sext(i, I64)
        muls, adds = [], []
        for k in range(NP_MIN_GROUP):
            muls.append(bb.mul(iw, c(2 * k + 1, I64), I64))
            if k >= 1:
                adds.append(bb.add(muls[k - 1], c(7, I64), I64))
        adds.append(bb.add(muls[-1], c(7, I64), I64))
        extra = bb.mul(iw, c(9999, I64), I64)
        t = extra
        for x in adds:
            t = bb.add(t, x, I64)
        cur = bb.load(I64, acc)
        bb.store(bb.add(cur, t, I64), acc)

    b.counted_loop(c(0, I32), c(3, I32), body)
    out = b.load(I64, acc)
    b.output(out)
    b.ret(out)
    return mod


@pytest.mark.parametrize(
    "build", [_interleaved_consumer_module, _anchor_inversion_module],
    ids=["interleaved-consumer", "anchor-inversion"],
)
def test_batch_cohort_emission_order_bit_exact(build):
    mod = build()
    fused_bcs = _tri_engine_check([mod], "main")
    # the body must still fuse (scalar demotion, not fusion bail-out)
    assert fused_stats(fused_bcs[0])["kernels"] >= 1


# -- fuel exhaustion at every segment boundary -------------------------------


def _exact_fuel_sweep(modules, entry, total_steps):
    """Every fuel budget in [1, total_steps]: identical verdict + state."""
    bcs = [compile_module(m) for m in modules]
    fused_bcs = [fuse_module(bm)[0] for bm in bcs]
    for fuel in range(1, total_steps + 1):
        try:
            plain = BytecodeVM(bcs, fuel=fuel).run(entry)
            plain_out = ("ok", plain.output_signature(), plain.steps)
        except FuelExhausted as exc:
            plain_out = ("fuel", str(exc))
        try:
            fused = BytecodeVM(fused_bcs, fuel=fuel).run(entry)
            fused_out = ("ok", fused.output_signature(), fused.steps)
        except FuelExhausted as exc:
            fused_out = ("fuel", str(exc))
        assert plain_out == fused_out, f"fuel={fuel}: {plain_out} != {fused_out}"


def test_fuel_exhaustion_every_boundary_fused_chain():
    """Every prefix budget through a heavily-fused body, including budgets
    landing on every internal position of every fused kernel."""
    mod = KERNEL_FAMILIES["fused_chain"](4)
    ref = run_program([mod], "main", fuel=_FUEL)
    assert ref.steps < 600  # keep the exact sweep cheap
    _exact_fuel_sweep([mod], "main", ref.steps)


def test_fuel_exhaustion_every_boundary_wide():
    mod = KERNEL_FAMILIES["fused_wide"](1)
    ref = run_program([mod], "main", fuel=_FUEL)
    assert ref.steps < 2500
    _exact_fuel_sweep([mod], "main", ref.steps)


def test_fuel_exhaustion_every_boundary_int_alu_o3():
    mod = run_opt(KERNEL_FAMILIES["int_alu"](3), pipeline("-O3")).module
    ref = run_program([mod], "main", fuel=_FUEL)
    assert ref.steps < 800
    _exact_fuel_sweep([mod], "main", ref.steps)


# -- hypothesis: random programs, random sequences ---------------------------


@given(prog_seed=st.integers(0, 10**6), seq_seed=st.integers(0, 10**6))
@settings(**_SETTINGS)
def test_random_program_random_sequence_fused(prog_seed, seq_seed):
    program = random_program(seed=prog_seed, n_modules=1)
    rng = np.random.default_rng(seq_seed)
    length = int(rng.integers(0, 20))
    seq = [SEARCH_PASSES[i] for i in rng.integers(0, len(SEARCH_PASSES), length)]
    modules = [run_opt(m, seq).module for m in program.modules]
    _tri_engine_check(modules, program.entry, fuel=program.fuel)


@given(prog_seed=st.integers(0, 10**6), frac=st.floats(0.05, 0.95))
@settings(**_SETTINGS)
def test_random_program_fuel_cut_fused(prog_seed, frac):
    """A random mid-run fuel budget: identical FuelExhausted verdicts."""
    program = random_program(seed=prog_seed, n_modules=1)
    ref = run_program(list(program.modules), program.entry, fuel=program.fuel)
    fuel = max(1, int(ref.steps * frac))
    bcs = [compile_module(m) for m in program.modules]
    fused_bcs = [fuse_module(bm)[0] for bm in bcs]
    try:
        plain = BytecodeVM(bcs, fuel=fuel).run(program.entry)
        plain_out = ("ok", plain.output_signature(), plain.steps)
    except FuelExhausted as exc:
        plain_out = ("fuel", str(exc))
    try:
        fused = BytecodeVM(fused_bcs, fuel=fuel).run(program.entry)
        fused_out = ("ok", fused.output_signature(), fused.steps)
    except FuelExhausted as exc:
        fused_out = ("fuel", str(exc))
    assert plain_out == fused_out


def test_fused_stats_reports_kernels():
    bm = compile_module(KERNEL_FAMILIES["fused_chain"](10))
    fused, stats = fuse_module(bm)
    assert stats["kernels"] > 0 and stats["fused_ops"] >= 3 * stats["kernels"]
    assert fused_stats(fused)["kernels"] == stats["kernels"]
