"""Tests for RNG plumbing and miscellaneous utilities."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        g = as_generator(None)
        assert isinstance(g, np.random.Generator)

    def test_int_seed_reproducible(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        g2 = as_generator(g)
        assert g2 is g


class TestSpawn:
    def test_children_independent(self):
        parent = as_generator(7)
        a, b = spawn(parent, 2)
        assert a.random() != b.random()

    def test_children_reproducible(self):
        c1 = spawn(as_generator(7), 3)
        c2 = spawn(as_generator(7), 3)
        assert [g.random() for g in c1] == [g.random() for g in c2]

    def test_spawn_does_not_consume_parent_stream(self):
        p1 = as_generator(7)
        spawn(p1, 4)
        p2 = as_generator(7)
        assert p1.random() == p2.random()
