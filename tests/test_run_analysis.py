"""Offline run analysis tests: result round-tripping, tolerant artifact
loading, the analyzer/differ (repro.obs.analysis), and the analyze/diff
CLI — including interrupted-run tolerance."""

import json
import math
import shutil

import pytest

from repro.cli import main
from repro.core.result import Measurement, TuningResult
from repro.obs import configure_logging
from repro.obs.analysis import DiffThresholds, analyze_run, diff_runs, load_run
from repro.obs.recorder import count_malformed_lines, read_events
from repro.reporting import span_table, timeline


@pytest.fixture(scope="module", autouse=True)
def _info_logging():
    configure_logging("info")
    yield
    configure_logging("info")


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One recorded seeded tune, shared by the module's tests (read-only)."""
    out = tmp_path_factory.mktemp("runs") / "run-a"
    rc = main([
        "tune", "security_sha", "--budget", "12", "--seed", "1",
        "--seq-length", "8", "--trace-out", str(out),
        "--log-level", "warning",
    ])
    assert rc == 0
    return out


@pytest.fixture(scope="module")
def run_dir_b(tmp_path_factory):
    """A second recording at the same seed — the diff baseline's twin."""
    out = tmp_path_factory.mktemp("runs") / "run-b"
    rc = main([
        "tune", "security_sha", "--budget", "12", "--seed", "1",
        "--seq-length", "8", "--trace-out", str(out),
        "--log-level", "warning",
    ])
    assert rc == 0
    return out


def _interrupt(src, dst):
    """Copy a run dir and vandalise it the way a mid-run kill would."""
    shutil.copytree(src, dst)
    (dst / "result.json").unlink()
    (dst / "metrics.json").unlink()
    with open(dst / "events.jsonl", "a") as fh:
        # an unclosed span (no wall/cpu) followed by a half-written line
        fh.write(json.dumps({"type": "span", "name": "measure",
                             "ts": 99.0, "depth": 1}) + "\n")
        fh.write('{"type": "span", "name": "tru')
    return dst


class TestResultRoundTrip:
    def _sample(self):
        res = TuningResult(program="security_sha", tuner="citroen",
                           o3_runtime=2e-5, o0_runtime=9e-5)
        res.measurements = [
            Measurement(0, "all", ("a", "b"), 3e-5, 0.66,
                        sequences={"m0": ("a", "b")}),
            Measurement(1, "m0", ("c",), float("inf"), 0.0, correct=False,
                        status="crash"),
            Measurement(2, "m0", ("d", "e"), 1.8e-5, 1.11, status="ok"),
        ]
        res.best_config = {"m0": ("d", "e"), "m1": ("a",)}
        res.timing = {"compile_wall_seconds": 1.5, "compile_cache_hit_rate": 0.4}
        res.extras = {"dedup_hits": 3, "provenance": {"des": {"wins": 1}}}
        return res

    def test_round_trip_preserves_everything_kept_by_to_dict(self):
        res = self._sample()
        back = TuningResult.from_dict(res.to_dict())
        assert back.program == res.program and back.tuner == res.tuner
        assert back.o3_runtime == res.o3_runtime
        assert back.o0_runtime == res.o0_runtime
        assert back.best_config == res.best_config
        assert all(isinstance(s, tuple) for s in back.best_config.values())
        assert back.timing == res.timing
        assert back.extras["provenance"] == res.extras["provenance"]
        assert len(back.measurements) == 3
        for orig, rt in zip(res.measurements, back.measurements):
            assert rt.sequence == orig.sequence
            assert isinstance(rt.sequence, tuple)
            assert rt.runtime == orig.runtime or (
                math.isinf(rt.runtime) and math.isinf(orig.runtime)
            )
            assert rt.correct == orig.correct and rt.status == orig.status
        # derived quantities recompute, not deserialise
        assert back.best_runtime == res.best_runtime
        assert back.n_infeasible == 1

    def test_round_trip_through_recorder_json(self):
        # the recorder stringifies inf/nan; from_dict must parse them back
        from repro.obs.recorder import _jsonable

        res = self._sample()
        wire = json.loads(json.dumps(_jsonable(res.to_dict())))
        assert wire["measurements"][1]["runtime"] == "inf"
        back = TuningResult.from_dict(wire)
        assert math.isinf(back.measurements[1].runtime)
        assert back.best_runtime == res.best_runtime

    def test_nan_runtimes_survive(self):
        wire = {"program": "p", "tuner": "t", "o3_runtime": "nan",
                "measurements": [{"index": 0, "module": "all",
                                  "sequence": ["x"], "runtime": "nan"}]}
        back = TuningResult.from_dict(wire)
        assert math.isnan(back.o3_runtime)
        assert math.isnan(back.measurements[0].runtime)


class TestTolerantEventReading:
    def test_read_events_skips_malformed_lines(self, run_dir, tmp_path):
        broken = _interrupt(run_dir, tmp_path / "broken")
        path = broken / "events.jsonl"
        events = read_events(path)
        assert events, "valid prefix should still load"
        assert count_malformed_lines(path) == 1
        with pytest.raises(json.JSONDecodeError):
            read_events(path, strict=True)

    def test_clean_file_has_no_malformed_lines(self, run_dir):
        assert count_malformed_lines(run_dir / "events.jsonl") == 0


class TestTruncatedSpanRendering:
    _SPANS = [
        {"type": "span", "name": "init", "ts": 0.0, "depth": 0,
         "wall": 1.0, "cpu": 0.9},
        {"type": "span", "name": "measure", "ts": 1.0, "depth": 0,
         "wall": 2.0, "cpu": 1.8},
        {"type": "span", "name": "measure", "ts": 3.0, "depth": 0},  # unclosed
    ]

    def test_span_table_marks_unclosed_spans(self):
        text = span_table(self._SPANS)
        assert "measure*" in text
        assert "* span never closed" in text
        # the unclosed span contributes to the count but not the timings
        row = next(l for l in text.splitlines() if l.startswith("measure*"))
        assert "2" in row and "2.000" in row

    def test_span_table_all_unclosed_renders_question_marks(self):
        spans = [{"type": "span", "name": "propose", "ts": 0.0, "depth": 0}]
        text = span_table(spans)
        assert "propose*" in text and "?" in text

    def test_timeline_extends_unclosed_span_to_end(self):
        text = timeline(self._SPANS)
        assert "measure*" in text
        assert "? (unclosed)" in text
        # closed spans still show durations
        assert "1000.0 ms" in text

    def test_rendering_matches_on_closed_only_events(self, run_dir):
        events = read_events(run_dir / "events.jsonl")
        text = span_table(events)
        assert "*" not in text.replace("%", "")
        assert "(traced top-level time)" in text


class TestLoadAndAnalyze:
    def test_load_run_reads_all_artifacts(self, run_dir):
        run = load_run(run_dir)
        assert not run.interrupted
        assert run.manifest["program"] == "security_sha"
        assert run.result is not None
        assert len(run.result.measurements) == 12
        assert run.best_runtime() == run.result.best_runtime
        assert run.wall_seconds() > 0
        assert 0.0 <= run.cache_hit_rate() <= 1.0
        assert run.calibration_rmse() is None or run.calibration_rmse() >= 0.0
        assert run.truncated_events == 0

    def test_load_run_rejects_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(tmp_path / "nope")

    def test_analyze_full_run_report_sections(self, run_dir):
        report = analyze_run(run_dir)
        for needle in (
            "# Run report:",
            "## Outcome",
            "## Where did the time go (Fig 5.12)",
            "## Surrogate calibration (Table 5.1 / Fig 5.7)",
            "## Generator provenance (Fig 5.9)",
            "## Convergence",
            "## Metrics",
            "best runtime:",
            "security_sha",
        ):
            assert needle in report, needle
        assert "interrupted" not in report

    def test_analyze_interrupted_run_still_reports(self, run_dir, tmp_path):
        broken = _interrupt(run_dir, tmp_path / "crash")
        run = load_run(broken)
        assert run.interrupted and run.result is None
        report = analyze_run(broken)
        assert "**interrupted run**" in report
        assert "no result.json" in report
        assert "1 truncated event line(s)" in report
        assert "measure*" in report  # the unclosed span renders, not raises
        assert "(no measurements recorded)" in report


class TestDiffRuns:
    def test_identical_seed_runs_pass_default_gates(self, run_dir, run_dir_b):
        verdict = diff_runs(run_dir, run_dir_b)
        assert verdict["ok"] and not verdict["regressed"]
        assert verdict["regressions"] == []
        runtime = next(
            c for c in verdict["checks"] if c["name"] == "best_runtime"
        )
        assert runtime["ratio"] == pytest.approx(1.0)
        assert not verdict["interrupted"]["a"]

    def test_doctored_regression_is_caught(self, run_dir, tmp_path):
        slow = tmp_path / "slow"
        shutil.copytree(run_dir, slow)
        data = json.loads((slow / "result.json").read_text())
        for m in data["measurements"]:
            if isinstance(m["runtime"], (int, float)):
                m["runtime"] *= 2.0
        (slow / "result.json").write_text(json.dumps(data))
        verdict = diff_runs(run_dir, slow)
        assert verdict["regressed"]
        assert "best_runtime" in verdict["regressions"]
        runtime = next(
            c for c in verdict["checks"] if c["name"] == "best_runtime"
        )
        assert runtime["ratio"] == pytest.approx(2.0)

    def test_missing_inputs_skip_instead_of_fail(self, run_dir, tmp_path):
        broken = _interrupt(run_dir, tmp_path / "gone")
        verdict = diff_runs(run_dir, broken)
        runtime = next(
            c for c in verdict["checks"] if c["name"] == "best_runtime"
        )
        assert runtime["skipped"] and runtime["ok"]
        assert verdict["interrupted"]["b"]

    def test_disabled_gates_are_skipped(self, run_dir, run_dir_b):
        thresholds = DiffThresholds(
            max_runtime_ratio=None, max_wall_ratio=None,
            max_cache_hit_drop=None, max_calibration_ratio=None,
        )
        verdict = diff_runs(run_dir, run_dir_b, thresholds)
        assert verdict["ok"]
        assert all(c["skipped"] for c in verdict["checks"])


class TestCli:
    def test_analyze_prints_report(self, run_dir, capsys):
        rc = main(["analyze", str(run_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# Run report:" in out
        assert "## Surrogate calibration" in out

    def test_analyze_out_writes_file(self, run_dir, tmp_path, capsys):
        report_path = tmp_path / "report.md"
        rc = main(["analyze", str(run_dir), "--out", str(report_path)])
        assert rc == 0
        assert report_path.read_text().startswith("# Run report:")

    def test_analyze_missing_dir_exits_nonzero(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["analyze", str(tmp_path / "missing")])

    def test_diff_exit_codes_gate_regressions(self, run_dir, run_dir_b,
                                              tmp_path, capsys):
        verdict_path = tmp_path / "verdict.json"
        rc = main([
            "diff", str(run_dir), str(run_dir_b),
            "--json-out", str(verdict_path),
        ])
        assert rc == 0
        verdict = json.loads(verdict_path.read_text())
        assert verdict["ok"] is True
        # an absurdly tight wall gate forces the regression exit code
        rc = main([
            "diff", str(run_dir), str(run_dir_b),
            "--max-wall-ratio", "1e-9", "--log-level", "warning",
        ])
        assert rc == 1

    def test_compare_writes_leaderboard_json(self, tmp_path, capsys):
        out = tmp_path / "cmp"
        rc = main([
            "compare", "security_sha", "--tuners", "random,citroen",
            "--budget", "10", "--seed", "1",
            "--trace-out", str(out), "--log-level", "warning",
        ])
        assert rc == 0
        payload = json.loads((out / "compare.json").read_text())
        assert payload["program"] == "security_sha"
        assert {e["tuner"] for e in payload["leaderboard"]} == {
            "random", "citroen",
        }
        # leaderboard sorted best-first and pointing at real sub-runs
        speeds = [e["speedup_vs_o3"] for e in payload["leaderboard"]]
        assert speeds == sorted(speeds, reverse=True)
        for entry in payload["leaderboard"]:
            assert (out / entry["tuner"] / "result.json").exists()
        # the parent dir analyzes as a comparison report
        report = analyze_run(out)
        assert "# Comparison report:" in report
        assert "## Leaderboard" in report
        assert "random" in report and "citroen" in report

    def test_no_diagnostics_flag_strips_decision_events(self, tmp_path,
                                                        capsys):
        out = tmp_path / "plain"
        rc = main([
            "tune", "security_sha", "--budget", "10", "--seed", "1",
            "--seq-length", "8", "--trace-out", str(out),
            "--no-diagnostics", "--log-level", "warning",
        ])
        assert rc == 0
        events = read_events(out / "events.jsonl")
        assert not any(e.get("name") == "decision" for e in events)
        # the analyzer degrades gracefully: report renders, diagnostics empty
        report = analyze_run(out)
        assert "(no decision records" in report
