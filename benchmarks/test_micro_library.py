"""Library micro-benchmarks (not a paper artefact).

Throughput of the substrate itself — compile pipeline, interpreter, GP
fitting — so performance regressions in the infrastructure are visible in
the benchmark history alongside the experiment regenerators.
"""

import numpy as np
import pytest

from repro import cbench_program, pipeline, run_opt
from repro.bo.gp import GaussianProcess
from repro.machine.interp import run_program


@pytest.fixture(scope="module")
def gsm():
    return cbench_program("telecom_gsm")


def test_compile_o3_throughput(benchmark, gsm):
    mod = gsm.get_module("long_term")
    result = benchmark(lambda: run_opt(mod, pipeline("-O3")))
    assert result.module.num_instrs() > 0


def test_interpreter_throughput(benchmark, gsm):
    result = benchmark(lambda: run_program(gsm.modules, fuel=gsm.fuel))
    assert result.steps > 1000


def test_gp_fit_100x60(benchmark):
    rng = np.random.default_rng(0)
    X = rng.random((100, 60))
    y = np.sin(3 * X[:, 0]) + X[:, 1]
    gp = GaussianProcess(60, seed=0)
    benchmark.pedantic(lambda: gp.fit(X, y, max_iter=25), rounds=3, iterations=1)
    mu, _ = gp.predict(X[:5])
    assert np.isfinite(mu).all()


def test_gp_predict_batch(benchmark):
    rng = np.random.default_rng(0)
    X = rng.random((200, 30))
    y = (X**2).sum(1)
    gp = GaussianProcess(30, seed=0).fit(X, y)
    Q = rng.random((500, 30))
    mu, sigma = benchmark(lambda: gp.predict(Q))
    assert len(mu) == 500 and (sigma > 0).all()
