"""Fig 4.7: AIBO vs BO-grad under different acquisition functions.

Paper's shape: whatever the AF (UCB with several betas, EI), AIBO improves
over BO-grad — the initialisation effect is not an artefact of one AF.
"""

import numpy as np

from repro.bo import AIBO, BOGrad
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale

AFS = [("ucb", 1.0, "UCB1"), ("ucb", 1.96, "UCB1.96"), ("ucb", 4.0, "UCB4"), ("ei", 1.96, "EI")]


def _run():
    dim = 60
    budget = 200 * scale()
    task = make_task("ackley", dim)
    kw = dict(n_init=30, refit_every=4, batch_size=10)
    out = {}
    for af, beta, label in AFS:
        out[(label, "aibo")] = AIBO(dim, seed=0, k=60, af=af, beta=beta, **kw).minimize(task, budget).best_y
        out[(label, "bo-grad")] = BOGrad(dim, seed=0, k=400, n_top=5, af=af, beta=beta, **kw).minimize(task, budget).best_y
    return out


def test_fig_4_7(once):
    out = once(_run)
    rows = [
        [label, f"{out[(label, 'aibo')]:.2f}", f"{out[(label, 'bo-grad')]:.2f}"]
        for _, _, label in AFS
    ]
    print_table("Fig 4.7: AIBO vs BO-grad across AFs (Ackley 60D)", ["AF", "AIBO", "BO-grad"], rows)
    once.benchmark.extra_info["results"] = {f"{l}/{m}": v for (l, m), v in out.items()}
    wins = sum(
        1 for _, _, label in AFS if out[(label, "aibo")] <= out[(label, "bo-grad")] * 1.05
    )
    assert wins >= 3, "AIBO should match or beat BO-grad under most AFs"
