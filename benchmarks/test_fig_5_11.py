"""Fig 5.11: hyperparameter sensitivity of CITROEN.

Paper's shape: the method is robust — moving UCB's beta, the candidate
pool size, or the exploration rate around the defaults changes the final
speedup only mildly.  Expected here: the spread between the best and
worst setting stays within ~15% of the default's speedup.
"""

import numpy as np

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAM = "telecom_gsm"

SETTINGS = {
    "default": {},
    "beta=1": {"beta": 1.0},
    "beta=4": {"beta": 4.0},
    "pool=3": {"per_strategy": 3},
    "pool=10": {"per_strategy": 10},
    "eps=0": {"novelty_epsilon": 0.0},
    "eps=0.5": {"novelty_epsilon": 0.5},
    "floor=0.05": {"coverage_floor": 0.05},
}


def _run():
    budget = 30 * scale()
    table = {}
    for name, kwargs in SETTINGS.items():
        sps = []
        for s in range(1, 3 + scale()):
            task = make_task(PROGRAM, seed=100 + s)
            res = Citroen(task, seed=s, **kwargs).tune(budget)
            sps.append(res.speedup_over_o3())
        table[name] = float(np.mean(sps))
    return table


def test_fig_5_11(once):
    table = once(_run)
    print_table(
        f"Fig 5.11: hyperparameter sensitivity on {PROGRAM}",
        ["setting", "speedup over -O3"],
        [[k, f"{v:.3f}x"] for k, v in table.items()],
    )
    once.benchmark.extra_info["table"] = table
    default = table["default"]
    spread = max(table.values()) - min(table.values())
    assert default >= 1.0
    assert spread <= 0.6 * default, "method should be robust to hyperparameters"
