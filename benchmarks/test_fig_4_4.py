"""Fig 4.4: compiler flag selection — AIBO vs BO-grad.

The Chapter 4 motivation that inadequate AF maximisation also bites in the
compiler domain: selecting which -O3 pipeline passes to enable (binary
decisions embedded in the unit box, threshold 0.5), objective = simulated
runtime of telecom_gsm.  Expected shape: AIBO's best runtime <= BO-grad's.
"""

import numpy as np

from repro.bo import AIBO, BOGrad
from repro.synthetic import FlagSelectionTask

from benchmarks.conftest import print_table, scale


def _run():
    budget = 50 * scale()
    t1 = FlagSelectionTask(platform="arm-a57", seed=0)
    o3 = t1.baseline_o3()
    aibo = AIBO(t1.dim, seed=1, n_init=12, k=40, refit_every=3).minimize(t1, budget)
    t2 = FlagSelectionTask(platform="arm-a57", seed=0)
    bog = BOGrad(t2.dim, seed=1, n_init=12, k=200, n_top=5, refit_every=3).minimize(t2, budget)
    return {
        "o3": o3,
        "aibo": aibo.best_y,
        "bo-grad": bog.best_y,
        "aibo_curve": aibo.best_history[:: max(1, budget // 8)].tolist(),
        "bograd_curve": bog.best_history[:: max(1, budget // 8)].tolist(),
    }


def test_fig_4_4(once):
    r = once(_run)
    print_table(
        "Fig 4.4: flag selection (telecom_gsm, lower runtime is better)",
        ["method", "best runtime (us)", "speedup vs all-flags(-O3)"],
        [
            ["AIBO", f"{r['aibo'] * 1e6:.2f}", f"{r['o3'] / r['aibo']:.3f}x"],
            ["BO-grad", f"{r['bo-grad'] * 1e6:.2f}", f"{r['o3'] / r['bo-grad']:.3f}x"],
        ],
    )
    once.benchmark.extra_info.update(r)
    assert r["aibo"] <= r["bo-grad"] * 1.03, "AIBO should match or beat BO-grad"
    assert r["aibo"] <= r["o3"], "tuned flags should not lose to the full pipeline"
