"""Table 5.3: the optimisation passes considered in evaluation.

The paper lists 76 LLVM-17 passes; this build implements a 40-pass
alphabet covering every family the paper's list spans (memory promotion,
peephole combining, redundancy elimination, CFG cleanup, the full loop
pipeline, both vectorisers, and interprocedural optimisation), each a real
transformation over the mini-IR with its own statistics counters.
"""

from repro import available_passes, cbench_program, run_opt
from repro.compiler.pipelines import O3

from benchmarks.conftest import print_table


def _probe_modules():
    """Diverse modules covering calls, loops, branches, div, dead code."""
    from repro import spec_program

    mods = []
    for prog_name in ("telecom_gsm", "telecom_adpcm_c", "automotive_qsort1",
                      "security_rijndael_d", "consumer_tiff2bw"):
        mods.extend(cbench_program(prog_name).modules)
    mods.extend(spec_program("557.xz_r").modules)  # memcpy/memset idioms
    return mods

#: enabling prefixes that expose each pass family's work
_PREFIXES = {
    "default": ["sroa", "function-attrs"],
    "loops": ["mem2reg", "loop-simplify", "lcssa"],
    "cleanup": ["mem2reg", "instcombine", "sccp", "inline"],
}


def _run():
    passes = available_passes()
    probes = _probe_modules()
    active = {}
    for p in passes:
        total = 0
        for prefix in _PREFIXES.values():
            seq = ([p] if p in prefix else prefix + [p])
            for m in probes:
                cr = run_opt(m, seq)
                total += sum(
                    v for k, v in cr.stats_json().items() if k.startswith(p + ".")
                )
        active[p] = total
    return passes, active


def test_table_5_3(once):
    passes, active = once(_run)
    rows = [[p, "yes" if p in O3 else "", active.get(p, 0)] for p in passes]
    print_table(
        f"Table 5.3: pass alphabet ({len(passes)} passes)",
        ["pass", "in -O3", "stats emitted on probe suite"],
        rows,
    )
    once.benchmark.extra_info["n_passes"] = len(passes)
    once.benchmark.extra_info["inactive"] = [p for p, v in active.items() if v == 0]
    assert len(passes) >= 40
    # a majority of passes transform some probe module out of the box; the
    # remainder (pattern-specific passes like jump-threading or argpromotion)
    # are each proven to fire by their dedicated unit tests in tests/
    assert sum(1 for v in active.values() if v > 0) >= len(passes) // 2
