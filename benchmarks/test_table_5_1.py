"""Table 5.1 / Fig 5.1: pass-related statistics vs speedup on telecom_gsm.

Paper's rows (LLVM 17, ARM A57):

    mem2reg slp-vectorizer              SLP.NVI=14  speedup 1.13x
    slp-vectorizer mem2reg              SLP.NVI=0   speedup 0.85x
    inst-combine mem2reg slp-vectorizer SLP.NVI=0   speedup 0.85x
    mem2reg inst-combine slp-vectorizer SLP.NVI=0   speedup 0.86x
    mem2reg slp-vectorizer instcombine  SLP.NVI=14  speedup 1.14x

Expected shape here: rows 1 and 5 vectorise (NVI > 0) and beat the others;
rows 2-4 fail to vectorise; the instcombine-before-slp rows report
``instcombine.NumWidened > 0`` (the Fig 5.1c transform).
"""

from repro import cbench_program, pipeline
from repro.machine import Profiler, get_platform
from repro.machine.interp import run_program

from benchmarks.conftest import print_table

SEQUENCES = [
    ["mem2reg", "slp-vectorizer"],
    ["slp-vectorizer", "mem2reg"],
    ["instcombine", "mem2reg", "slp-vectorizer"],
    ["mem2reg", "instcombine", "slp-vectorizer"],
    ["mem2reg", "slp-vectorizer", "instcombine"],
]


def _run_rows():
    program = cbench_program("telecom_gsm")
    platform = get_platform("arm-a57")
    profiler = Profiler(platform, seed=0)
    target = platform.target_info()
    ref = program.reference_output().output_signature()
    o3_linked, _ = program.compile(
        {m.name: pipeline("-O3") for m in program.modules}, target
    )
    o3 = profiler.measure(o3_linked).seconds
    rows = []
    for seq in SEQUENCES:
        config = {m.name: pipeline("-O3") for m in program.modules}
        config["long_term"] = seq
        linked, results = program.compile(config, target)
        assert run_program(linked, fuel=program.fuel).output_signature() == ref
        t = profiler.measure(linked).seconds
        st = results["long_term"].stats_json()
        rows.append(
            {
                "sequence": " ".join(seq),
                "nvi": st.get("slp-vectorizer.NumVectorInstructions", 0),
                "widened": st.get("instcombine.NumWidened", 0),
                "promoted": st.get("mem2reg.NumPromoted", 0),
                "speedup": o3 / t,
            }
        )
    return rows


def test_table_5_1(once):
    rows = _run_rows()
    print_table(
        "Table 5.1: statistics vs speedup (telecom_gsm long_term)",
        ["sequence", "SLP.NVI", "ic.NumWidened", "m2r.NumPromoted", "speedup/-O3"],
        [
            [r["sequence"], r["nvi"], r["widened"], r["promoted"], f"{r['speedup']:.2f}x"]
            for r in rows
        ],
    )
    once(lambda: _run_rows())
    # shape assertions: who vectorises, who wins
    assert rows[0]["nvi"] > 0 and rows[4]["nvi"] > 0
    assert rows[1]["nvi"] == rows[2]["nvi"] == rows[3]["nvi"] == 0
    assert rows[2]["widened"] > 0 and rows[3]["widened"] > 0
    good = min(rows[0]["speedup"], rows[4]["speedup"])
    bad = max(rows[1]["speedup"], rows[2]["speedup"], rows[3]["speedup"])
    assert good > bad, "vectorising orders must beat non-vectorising ones"
    once.benchmark.extra_info["rows"] = rows
