"""Fig 5.6: average speedup over -O3 for CITROEN vs baselines.

Paper's shape (budget 100, cBench + SPEC, ARM + x86): CITROEN highest on
average; random search is a surprisingly strong floor; GA and generic BO
in between; gains on SPEC are smaller (~6% over -O3) than on cBench.
Expected here: citroen's mean speedup >= every baseline's on each suite.
"""

import numpy as np
import pytest

from benchmarks.conftest import TUNERS, mean_speedups, print_table, run_tuner, scale

CB_PROGRAMS = ["telecom_gsm", "consumer_jpeg_c", "consumer_tiff2bw", "security_sha"]
SPEC_PROGRAMS = ["519.lbm_r", "525.x264_r"]
TUNER_NAMES = ["citroen", "random", "ga", "ensemble", "boca", "bo-seq"]


def _run(platform: str):
    budget = 40 * scale()
    seeds = list(range(1, 1 + scale()))
    table = {}
    for suite, programs in (("cBench", CB_PROGRAMS), ("SPEC", SPEC_PROGRAMS)):
        for tuner in TUNER_NAMES:
            sps = []
            for prog in programs:
                for s in seeds:
                    res = run_tuner(tuner, prog, budget, seed=s, platform=platform)
                    sps.append(res.speedup_over_o3())
            table[(suite, tuner)] = float(np.mean(sps))
    return table


@pytest.mark.parametrize("platform", ["arm-a57", "amd-x86"])
def test_fig_5_6(once, platform):
    table = once(_run, platform)
    rows = []
    for suite in ("cBench", "SPEC"):
        for tuner in TUNER_NAMES:
            rows.append([suite, tuner, f"{table[(suite, tuner)]:.3f}x"])
    print_table(
        f"Fig 5.6: mean speedup over -O3 ({platform}, budget {40 * scale()})",
        ["suite", "tuner", "speedup"],
        rows,
    )
    once.benchmark.extra_info["table"] = {f"{k[0]}/{k[1]}": v for k, v in table.items()}
    for suite in ("cBench", "SPEC"):
        best_baseline = max(table[(suite, t)] for t in TUNER_NAMES if t != "citroen")
        assert table[(suite, "citroen")] >= best_baseline * 0.97, (
            f"citroen should be at or near the top on {suite}"
        )
        assert table[(suite, "citroen")] >= 1.0
