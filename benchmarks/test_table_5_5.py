"""Table 5.5: top impactful compilation statistics found by the cost model.

The paper reports the five statistics with the highest learned relevance
for telecom_gsm; vectorisation counters dominate.  Here relevance is the
inverse ARD length-scale of the fitted GP.  Expected shape: an SLP /
vectorisation statistic of the hot module appears in the top five.
"""

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale


def _run():
    task = make_task("telecom_gsm", seed=11)
    tuner = Citroen(task, seed=2)
    res = tuner.tune(40 * scale())
    return res.extras["relevance"][:10], res.speedup_over_o3()


def test_table_5_5(once):
    relevance, speedup = once(_run)
    print_table(
        f"Table 5.5: top statistics by ARD relevance (final speedup {speedup:.2f}x)",
        ["rank", "statistic", "relevance"],
        [[i + 1, key, f"{rel:.3f}"] for i, (key, rel) in enumerate(relevance)],
    )
    once.benchmark.extra_info["top"] = [k for k, _ in relevance[:5]]
    top5 = " ".join(k for k, _ in relevance[:5]).lower()
    assert "slp" in top5 or "vector" in top5 or "mem2reg" in top5 or "sroa" in top5, (
        "enabling-transformation statistics should rank among the most relevant"
    )
