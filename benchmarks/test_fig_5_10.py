"""Fig 5.10: behaviour under an older compiler (LLVM-10-like pass set).

The paper re-runs CITROEN vs an Autophase-feature baseline with LLVM 10 to
show the method is not tied to one compiler version.  Here the "older
compiler" is the reduced ``LLVM10_PASSES`` alphabet (fewer passes, no
vector-combine / unswitch / bdce / ...).  Expected shape: CITROEN[stats]
still >= CITROEN[autophase], and both still find speedups >= 1.
"""

import numpy as np

from repro import AutotuningTask, Citroen, cbench_program
from repro.compiler.pipelines import LLVM10_PASSES

from benchmarks.conftest import print_table, scale

PROGRAMS = ["telecom_gsm", "consumer_jpeg_c"]


def _run():
    budget = 40 * scale()
    table = {}
    for mode in ("stats", "autophase"):
        sps = []
        for prog in PROGRAMS:
            for s in range(1, 2 + scale()):
                task = AutotuningTask(
                    cbench_program(prog),
                    platform="arm-a57",
                    seed=100 + s,
                    seq_length=24,
                    passes=LLVM10_PASSES,
                )
                res = Citroen(task, seed=s, feature_mode=mode).tune(budget)
                sps.append(res.speedup_over_o3())
        table[mode] = float(np.mean(sps))
    return table


def test_fig_5_10(once):
    table = once(_run)
    print_table(
        f"Fig 5.10: reduced (LLVM-10-like) pass set, {len(LLVM10_PASSES)} passes",
        ["features", "speedup over -O3"],
        [[k, f"{v:.3f}x"] for k, v in table.items()],
    )
    once.benchmark.extra_info["table"] = table
    once.benchmark.extra_info["n_passes"] = len(LLVM10_PASSES)
    assert table["stats"] >= 1.0
    assert table["stats"] >= table["autophase"] * 0.96
