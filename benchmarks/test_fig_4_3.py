"""Fig 4.3: AF-based vs random vs optimal selection among AF-maximiser
candidates (the Chapter 4 motivation experiment).

Standard BO with random AF-maximiser initialisation on high-dimensional
Ackley.  At every iteration the maximiser produces a pool of candidates;
we compare three selection rules over the *same* pools:

* AF-based (native BO)   — pick the candidate with the highest AF value;
* random selection       — pick uniformly;
* optimal selection      — evaluate the true objective on every candidate
  and pick the best (oracle, costs extra evaluations that are not charged).

Paper's shape: AF-based ~= optimal > random, i.e. the AF itself is fine —
the candidate pool is the bottleneck.  Run at 20D here: at the paper's
100D our laptop budgets leave the GP uninformative, making every pool
candidate an interchangeable prior-flat point and the comparison pure
noise; at 20D the model has signal and the ordering is reproducible.
"""

import numpy as np

from repro.bo.acquisition import make_acquisition
from repro.bo.gp import GaussianProcess
from repro.bo.maximizer import gradient_maximize
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale


def _one_run(rule, seed, dim, budget, n_init=20, pool_size=10):
    task = make_task("ackley", dim)
    r = np.random.default_rng(seed)
    X = list(r.random((n_init, dim)))
    y = [task(x) for x in X]
    gp = GaussianProcess(dim, seed=1)
    it = 0
    while len(y) < budget:
        gp.fit(np.asarray(X), np.asarray(y), optimize_hypers=(it % 5 == 0), max_iter=25)
        af = make_acquisition("ucb", gp)
        starts = r.random((pool_size, dim))
        pool, pool_af = [], []
        for s in starts:
            x, v = gradient_maximize(af, s, max_iter=15)
            pool.append(x)
            pool_af.append(v)
        if rule == "af":
            pick = int(np.argmax(pool_af))
        elif rule == "random":
            pick = int(r.integers(0, len(pool)))
        else:  # oracle: peek at the objective (not charged, as in Fig 4.3)
            pick = int(np.argmin([task(p) for p in pool]))
        X.append(pool[pick])
        y.append(task(pool[pick]))
        it += 1
    return float(np.min(y))


def _run():
    dim = 20
    budget = 200 * scale()
    seeds = (7, 8, 9)
    results = {}
    for rule in ("af", "random", "optimal"):
        results[rule] = float(np.mean([_one_run(rule, s, dim, budget) for s in seeds]))
    return results


def test_fig_4_3(once):
    results = once(_run)
    print_table(
        "Fig 4.3: selection rule over AF-maximiser candidate pools (Ackley 20D)",
        ["selection", "best value found"],
        [[k, f"{v:.3f}"] for k, v in results.items()],
    )
    once.benchmark.extra_info["results"] = results
    # AF-based selection is close to the oracle and beats random selection
    assert results["af"] <= results["random"] + 0.25
    assert results["af"] <= results["optimal"] + 1.5
