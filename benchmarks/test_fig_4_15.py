"""Fig 4.15: a more exploratory AF makes AIBO's initialisation more diverse.

The thesis measures the mean pairwise distance of the GA population over
thousands of iterations; at laptop budgets that population (the fittest 50
samples ever seen) barely differentiates between AFs, so this bench
measures the same mechanism one step earlier: the spatial footprint (mean
pairwise distance) of the AF-chosen evaluation points.  A more exploratory
AF (UCB9) must produce a wider footprint than UCB1.96, which is what feeds
the GA population its diversity.  The GA-population metric is reported as
a secondary column.
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale


def _pairwise_mean(X):
    d = np.sqrt(((X[:, None, :] - X[None, :, :]) ** 2).sum(-1))
    m = len(X)
    return float(d.sum() / (m * (m - 1)))


def _run():
    dim = 60
    budget = 200 * scale()
    n_init = 20
    task = make_task("ackley", dim)
    out = {}
    for label, beta in (("UCB1.96", 1.96), ("UCB9", 9.0)):
        opt = AIBO(dim, seed=0, k=50, n_init=n_init, beta=beta, refit_every=4,
                   batch_size=10)
        res = opt.minimize(task, budget)
        div = res.diagnostics["ga_diversity"]
        out[label] = {
            "sample_footprint": _pairwise_mean(res.X[n_init:]),
            "ga_diversity_final": float(div[-1]) if div else 0.0,
            "best": res.best_y,
        }
    return out


def test_fig_4_15(once):
    out = once(_run)
    print_table(
        "Fig 4.15: AF exploration vs sampling diversity (Ackley 60D)",
        ["AF", "sample footprint", "GA diversity (final)", "best value"],
        [
            [k, f"{v['sample_footprint']:.3f}", f"{v['ga_diversity_final']:.3f}", f"{v['best']:.2f}"]
            for k, v in out.items()
        ],
    )
    once.benchmark.extra_info["results"] = out
    assert out["UCB9"]["sample_footprint"] >= out["UCB1.96"]["sample_footprint"] * 0.99, (
        "a more exploratory AF should sample a wider footprint"
    )
