"""Fig 4.12: AIBO ablation — single strategies vs the ensemble.

Paper's shape: AIBO_ga / AIBO_cmaes individually already beat
AIBO_random (= BO-grad); the ensemble is the most robust (never far from
the best single strategy on any task).
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import make_task, push_surrogate

from benchmarks.conftest import print_table, scale

VARIANTS = {
    "aibo": ("cmaes", "ga", "random"),
    "aibo_gacma": ("cmaes", "ga"),
    "aibo_ga": ("ga",),
    "aibo_cmaes": ("cmaes",),
    "aibo_random": ("random",),
}


def _run():
    budget = 200 * scale()
    tasks = {
        "ackley60": make_task("ackley", 60),
        "push14": push_surrogate(dim=14, seed=7),
    }
    dims = {"ackley60": 60, "push14": 14}
    out = {}
    for tname, task in tasks.items():
        for vname, strategies in VARIANTS.items():
            res = AIBO(
                dims[tname], seed=0, k=50, n_init=25, strategies=strategies,
                refit_every=4, batch_size=10,
            ).minimize(task, budget)
            out[(tname, vname)] = res.best_y
    return out


def test_fig_4_12(once):
    out = once(_run)
    rows = []
    for tname in ("ackley60", "push14"):
        rows.append([tname] + [f"{out[(tname, v)]:.2f}" for v in VARIANTS])
    print_table("Fig 4.12: AIBO strategy ablation (lower is better)",
                ["task"] + list(VARIANTS), rows)
    once.benchmark.extra_info["results"] = {f"{t}/{v}": x for (t, v), x in out.items()}
    # the ensemble is robust: within tolerance of the best variant per task
    for tname in ("ackley60", "push14"):
        best = min(out[(tname, v)] for v in VARIANTS)
        spread = max(abs(best), 1.0)
        assert out[(tname, "aibo")] <= best + 0.8 * spread
    # heuristic initialisation beats random-only on the high-dim task
    assert out[("ackley60", "aibo")] <= out[("ackley60", "aibo_random")] * 1.05
