"""Table 5.2: the coverage issue in the statistics feature space.

Quantifies why a vanilla UCB over statistics features over-explores: after
a small initial design, a large share of *random* candidate sequences
produce statistics with feature values outside the observed coverage, and
the GP's posterior on them collapses to the prior (sigma ~ 1, mean ~
average) — so they all look equally, maximally attractive.  Candidates
generated near the incumbent (DES mutations) are far better covered.

Expected shape: coverage(random candidates) < coverage(DES candidates);
mean GP sigma on uncovered candidates > on covered candidates.
"""

import numpy as np

from repro.core.cost_model import CitroenCostModel
from repro.heuristics.des import DiscreteES
from repro.heuristics.random_search import RandomSequenceSearch

from benchmarks.conftest import make_task, print_table, scale


def _run():
    task = make_task("telecom_gsm", seed=7)
    rng = np.random.default_rng(0)
    model = CitroenCostModel(seed=0)
    module = task.hot_modules[0]

    # small initial design, as at the start of a real run
    o3_idx = [i for i, p in enumerate(task.passes)]
    seed_seqs = [rng.integers(0, task.alphabet, size=task.seq_length) for _ in range(8)]
    for seq in seed_seqs:
        _, stats = task.compile_module(module, seq)
        model.add_observation({module: stats}, float(rng.random() + 0.5))
    model.fit()

    des = DiscreteES(task.seq_length, task.alphabet, seed=1)
    des.seed_parent(seed_seqs[0])
    rnd = RandomSequenceSearch(task.seq_length, task.alphabet, seed=2)

    n = 60 * scale()
    out = {}
    for name, gen in (("des-near-incumbent", des), ("random", rnd)):
        covs, sigmas = [], []
        for seq in gen.ask(n):
            _, stats = task.compile_module(module, seq)
            covs.append(model.coverage({module: stats}))
            _, sigma = model.predict([{module: stats}])
            sigmas.append(float(sigma[0]))
        covs = np.asarray(covs)
        sigmas = np.asarray(sigmas)
        out[name] = {
            "mean_coverage": float(covs.mean()),
            "frac_uncovered": float((covs < 1.0).mean()),
            "mean_sigma_covered": float(sigmas[covs >= 1.0].mean()) if (covs >= 1.0).any() else float("nan"),
            "mean_sigma_uncovered": float(sigmas[covs < 1.0].mean()) if (covs < 1.0).any() else float("nan"),
        }
    return out


def test_table_5_2(once):
    out = once(_run)
    print_table(
        "Table 5.2: coverage of candidate statistics after 8 observations",
        ["generator", "mean coverage", "% uncovered", "sigma(covered)", "sigma(uncovered)"],
        [
            [
                k,
                f"{v['mean_coverage']:.3f}",
                f"{100 * v['frac_uncovered']:.1f}",
                f"{v['mean_sigma_covered']:.3f}",
                f"{v['mean_sigma_uncovered']:.3f}",
            ]
            for k, v in out.items()
        ],
    )
    once.benchmark.extra_info["table"] = out
    assert out["des-near-incumbent"]["mean_coverage"] >= out["random"]["mean_coverage"]
    rnd = out["random"]
    if rnd["frac_uncovered"] > 0 and not np.isnan(rnd["mean_sigma_covered"]):
        assert rnd["mean_sigma_uncovered"] >= rnd["mean_sigma_covered"] * 0.9
