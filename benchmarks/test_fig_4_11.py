"""Fig 4.11: random initialisation rescues over-exploitation.

AIBO_gacma (no random strategy) with deliberately over-exploitative
hyperparameters (tiny GA population, tiny CMA-ES sigma) collapses on the
sparse-reward push task; re-introducing the random strategy recovers most
of the loss.  Expected shape:
full-random-augmented <= over-exploitative gacma (minimisation).
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import push_surrogate

from benchmarks.conftest import print_table, scale


def _run():
    dim = 14
    budget = 150 * scale()
    task = push_surrogate(dim=dim, seed=7)
    kw = dict(n_init=20, k=50, refit_every=3, batch_size=10)
    out = {}
    seeds = range(2 + scale())
    configs = {
        "gacma (default)": dict(strategies=("cmaes", "ga")),
        "gacma (over-exploit)": dict(strategies=("cmaes", "ga"), ga_pop=3, cmaes_sigma=0.01),
        "+random (over-exploit)": dict(strategies=("cmaes", "ga", "random"), ga_pop=3, cmaes_sigma=0.01),
    }
    for label, cfg in configs.items():
        vals = [AIBO(dim, seed=s, **kw, **cfg).minimize(task, budget).best_y for s in seeds]
        out[label] = float(np.mean(vals))
    return out


def test_fig_4_11(once):
    out = once(_run)
    print_table(
        "Fig 4.11: the over-exploitation case (push task, lower is better)",
        ["configuration", "mean best value"],
        [[k, f"{v:.3f}"] for k, v in out.items()],
    )
    once.benchmark.extra_info["results"] = out
    assert out["+random (over-exploit)"] <= out["gacma (over-exploit)"] + 0.3, (
        "random initialisation should mitigate over-exploitation"
    )
