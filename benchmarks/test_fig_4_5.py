"""Fig 4.5: AIBO vs baselines on the synthetic benchmark functions.

Paper's shape (20/100/300D): AIBO consistently improves BO-grad, with the
gap growing with dimensionality; AIBO also beats the pure heuristics
(CMA-ES, GA) and the high-dimensional BO methods (TuRBO, HeSBO) in most
cases.  Scaled-down here to 20D and 60D Ackley + Rastrigin.
"""

import numpy as np

from repro.bo import AIBO, BOGrad, HeSBO, TuRBO
from repro.heuristics import CMAES, ContinuousGA
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale


def _run_heuristic(opt, task, budget, batch=10):
    for _ in range(budget // batch):
        X = opt.ask(batch)
        opt.tell(X, np.array([task(x) for x in X]))
    return opt.best_y


def _run():
    budget = 250 * scale()
    settings = [("ackley", 20), ("ackley", 60), ("rastrigin", 20)]
    kw = dict(n_init=30, refit_every=4, batch_size=10)
    out = {}
    for fname, dim in settings:
        task = make_task(fname, dim)
        out[(fname, dim, "aibo")] = AIBO(dim, seed=0, k=60, **kw).minimize(task, budget).best_y
        out[(fname, dim, "bo-grad")] = BOGrad(dim, seed=0, k=400, n_top=5, **kw).minimize(task, budget).best_y
        out[(fname, dim, "cmaes")] = _run_heuristic(CMAES(dim, seed=0), task, budget)
        out[(fname, dim, "ga")] = _run_heuristic(ContinuousGA(dim, seed=0), task, budget)
        out[(fname, dim, "turbo")] = TuRBO(dim, seed=0, n_init=30).minimize(task, budget).best_y
        out[(fname, dim, "hesbo")] = HeSBO(dim, low_dim=10, seed=0, n_init=20, refit_every=4,
                                           batch_size=10).minimize(task, budget).best_y
    return settings, out


def test_fig_4_5(once):
    settings, out = once(_run)
    methods = ["aibo", "bo-grad", "cmaes", "ga", "turbo", "hesbo"]
    rows = []
    for fname, dim in settings:
        rows.append([f"{fname}{dim}"] + [f"{out[(fname, dim, m)]:.2f}" for m in methods])
    print_table(
        f"Fig 4.5: best value found (budget {250 * scale()}, lower is better)",
        ["task"] + methods,
        rows,
    )
    once.benchmark.extra_info["results"] = {f"{f}{d}/{m}": out[(f, d, m)]
                                            for f, d in settings for m in methods}
    # headline shape: AIBO beats BO-grad on the 60D task
    assert out[("ackley", 60, "aibo")] <= out[("ackley", 60, "bo-grad")] * 1.05
    # and is competitive with the best method on every task
    for fname, dim in settings:
        best = min(out[(fname, dim, m)] for m in methods)
        assert out[(fname, dim, "aibo")] <= max(2.0 * best, best + 3.0)
