"""Fig 5.9: alternative feature-extraction methods for the cost model.

Same search machinery, different features: compilation statistics
(CITROEN), Autophase-style IR counters, raw pass sequences, and
DeepTune-style token bigrams.  Paper's shape: statistics > autophase >
sequence/tokens, because only statistics expose what each pass *did*
(e.g. function-attrs is invisible to the others, §3.4).
"""

import numpy as np

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAMS = ["telecom_gsm", "consumer_tiff2bw"]
MODES = ["stats", "autophase", "seq", "tokens"]


def _run():
    budget = 40 * scale()
    seeds = range(1, 2 + scale())
    table = {}
    for mode in MODES:
        sps = []
        for prog in PROGRAMS:
            for s in seeds:
                task = make_task(prog, seed=100 + s)
                res = Citroen(task, seed=s, feature_mode=mode).tune(budget)
                sps.append(res.speedup_over_o3())
        table[mode] = float(np.mean(sps))
    return table


def test_fig_5_9(once):
    table = once(_run)
    print_table(
        "Fig 5.9: feature extraction comparison (mean speedup over -O3)",
        ["features", "speedup"],
        [[k, f"{v:.3f}x"] for k, v in table.items()],
    )
    once.benchmark.extra_info["table"] = table
    assert table["stats"] >= max(table.values()) * 0.96, (
        "compilation statistics should be the strongest feature space"
    )
