"""Shared infrastructure for the experiment-regeneration benchmarks.

Every file in this directory regenerates one table or figure from the
paper (see DESIGN.md's experiment index).  Numbers print to stdout (run
with ``-s`` to watch) and are attached to ``benchmark.extra_info`` so they
appear in pytest-benchmark's JSON output.

Budgets are laptop-scale by default; set ``REPRO_BENCH_SCALE=2`` (or more)
to run closer to the paper's budgets.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro import (
    AutotuningTask,
    BOCATuner,
    Citroen,
    EnsembleTuner,
    GATuner,
    RandomSearchTuner,
    cbench_program,
    spec_program,
)
from repro.core.result import TuningResult
from repro.workloads import cbench_names, spec_names


def scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


#: Tasks handed out by make_task since the last cleanup; the autouse
#: fixture below closes them so no benchmark leaks a worker pool.
_OPEN_TASKS: List[AutotuningTask] = []


def make_task(
    program_name: str,
    platform: str = "arm-a57",
    seed: int = 0,
    seq_length: int = 24,
    **task_kwargs,
) -> AutotuningTask:
    prog = (
        cbench_program(program_name)
        if program_name in cbench_names()
        else spec_program(program_name)
    )
    task = AutotuningTask(
        prog, platform=platform, seed=seed, seq_length=seq_length, **task_kwargs
    )
    _OPEN_TASKS.append(task)
    return task


@pytest.fixture(autouse=True)
def _close_open_tasks():
    """Close every task a benchmark created (idempotent; pool leak guard)."""
    yield
    while _OPEN_TASKS:
        _OPEN_TASKS.pop().close()


TUNERS: Dict[str, Callable] = {
    "citroen": lambda task, seed: Citroen(task, seed=seed),
    "random": lambda task, seed: RandomSearchTuner(task, seed=seed),
    "ga": lambda task, seed: GATuner(task, seed=seed),
    "ensemble": lambda task, seed: EnsembleTuner(task, seed=seed),
    "boca": lambda task, seed: BOCATuner(task, seed=seed),
    # "standard BO": CITROEN machinery, raw sequence features, random
    # candidates, vanilla UCB (§5.4.4's generic BO baseline)
    "bo-seq": lambda task, seed: Citroen(
        task, seed=seed, feature_mode="seq", generators=("random",), use_coverage=False
    ),
}


def run_tuner(
    tuner_name: str,
    program_name: str,
    budget: int,
    seed: int = 1,
    platform: str = "arm-a57",
    tuner_factory: Optional[Callable] = None,
) -> TuningResult:
    factory = tuner_factory if tuner_factory is not None else TUNERS[tuner_name]
    with make_task(program_name, platform=platform, seed=100 + seed) as task:
        return factory(task, seed).tune(budget)


def mean_speedups(
    results: Sequence[TuningResult], at: Optional[int] = None
) -> float:
    return float(np.mean([r.speedup_over_o3(at=at) for r in results]))


def print_table(title: str, header: List[str], rows: List[List[str]]) -> None:
    print(f"\n=== {title} ===")
    widths = [max(len(str(r[i])) for r in [header] + rows) + 2 for i in range(len(header))]
    print("".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("-" * sum(widths))
    for row in rows:
        print("".join(str(v).ljust(w) for v, w in zip(row, widths)))


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    _run.benchmark = benchmark
    return _run
