"""Fig 4.14: AIBO hyperparameter sensitivity.

Varies GA population size / CMA-ES sigma (exploration pressure), the raw
candidate count k and selected starts n, and the batch size.  Paper's
shape: different tasks prefer different trade-offs, but no setting
collapses — the method is hyperparameter-robust.
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale

SETTINGS = {
    "default": {},
    "pop=100,sigma=0.5": {"ga_pop": 100, "cmaes_sigma": 0.5},
    "pop=10,sigma=0.05": {"ga_pop": 10, "cmaes_sigma": 0.05},
    "k=200,n=5": {"k": 200, "n_top": 5},
    "k=20,n=1": {"k": 20, "n_top": 1},
    "batch=1": {"batch_size": 1},
}


def _run():
    dim = 60
    budget = 150 * scale()
    task = make_task("ackley", dim)
    out = {}
    for label, kwargs in SETTINGS.items():
        kw = dict(n_init=25, refit_every=4, batch_size=10, k=60)
        kw.update(kwargs)
        out[label] = AIBO(dim, seed=0, **kw).minimize(task, budget).best_y
    return out


def test_fig_4_14(once):
    out = once(_run)
    print_table("Fig 4.14: AIBO hyperparameters (Ackley 60D, lower is better)",
                ["setting", "best value"],
                [[k, f"{v:.2f}"] for k, v in out.items()])
    once.benchmark.extra_info["results"] = out
    default = out["default"]
    assert max(out.values()) <= default + 8.0, "no setting should collapse"
