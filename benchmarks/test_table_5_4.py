"""Table 5.4: benchmark programs used in evaluation.

Prints the suite inventory with sizes and -O3 headroom, mirroring the
paper's benchmark table (cBench programs + SPEC CPU 2017 subset).
"""

from repro import Profiler, cbench_names, cbench_program, get_platform, pipeline, spec_names, spec_program

from benchmarks.conftest import print_table


def _run():
    platform = get_platform("arm-a57")
    prof = Profiler(platform, seed=0)
    rows = []
    for name in cbench_names() + spec_names():
        p = cbench_program(name) if name in cbench_names() else spec_program(name)
        o0 = prof.measure(list(p.modules)).seconds
        linked, _ = p.compile({m.name: pipeline("-O3") for m in p.modules},
                              platform.target_info())
        o3 = prof.measure(linked).seconds
        rows.append(
            {
                "program": name,
                "suite": p.suite,
                "modules": len(p.modules),
                "instrs": sum(m.num_instrs() for m in p.modules),
                "o3_speedup": o0 / o3,
            }
        )
    return rows


def test_table_5_4(once):
    rows = once(_run)
    print_table(
        "Table 5.4: benchmark inventory",
        ["program", "suite", "#modules", "#instrs", "-O3 vs -O0"],
        [
            [r["program"], r["suite"], r["modules"], r["instrs"], f"{r['o3_speedup']:.2f}x"]
            for r in rows
        ],
    )
    once.benchmark.extra_info["rows"] = rows
    assert sum(1 for r in rows if r["suite"] == "cbench") >= 10
    assert sum(1 for r in rows if r["suite"] == "spec") >= 4
    assert all(r["o3_speedup"] > 1.2 for r in rows), "-O3 must be a real baseline"
    assert all(r["modules"] >= 3 for r in rows if r["suite"] == "spec")
