"""§1.3 / §5.3: adaptive multi-module budget allocation vs round-robin.

The paper reports up to 2.5x faster convergence from letting the model
allocate measurements across source files.  Metric here: the number of
measurements each policy needs to reach 95% of the round-robin policy's
final speedup, averaged over SPEC-like multi-module programs.

Expected shape: convergence ratio (round-robin / adaptive) >= 1.
"""

import numpy as np

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAMS = ["519.lbm_r", "525.x264_r", "557.xz_r"]


def _measurements_to_reach(result, target):
    for i in range(1, len(result.measurements) + 1):
        if result.speedup_over_o3(at=i) >= target:
            return i
    return len(result.measurements)


def _run():
    budget = 60 * scale()
    rows = []
    ratios = []
    for prog in PROGRAMS:
        per_policy = {}
        for policy in ("adaptive", "round-robin"):
            runs = []
            for s in range(1, 3 + scale()):
                task = make_task(prog, seed=200 + s)
                runs.append(
                    Citroen(task, seed=s, module_policy=policy).tune(budget)
                )
            per_policy[policy] = runs
        # target just below the convergence knee of the *slower* policy so
        # the measurement counts discriminate
        final_rr = float(np.mean([r.speedup_over_o3() for r in per_policy["round-robin"]]))
        final_ad = float(np.mean([r.speedup_over_o3() for r in per_policy["adaptive"]]))
        target = 0.97 * min(final_rr, final_ad)
        n_ad = float(np.mean([_measurements_to_reach(r, target) for r in per_policy["adaptive"]]))
        n_rr = float(np.mean([_measurements_to_reach(r, target) for r in per_policy["round-robin"]]))
        ratio = n_rr / max(n_ad, 1.0)
        ratios.append(ratio)
        rows.append(
            {
                "program": prog,
                "target": target,
                "adaptive": n_ad,
                "round_robin": n_rr,
                "ratio": ratio,
                "sp_adaptive": final_ad,
                "sp_rr": final_rr,
            }
        )
    return rows, float(np.mean(ratios))


def test_multimodule_budget(once):
    rows, mean_ratio = once(_run)
    print_table(
        "Adaptive vs round-robin budget allocation (measurements to target)",
        ["program", "target", "adaptive", "round-robin", "convergence ratio", "sp(ad)", "sp(rr)"],
        [
            [
                r["program"],
                f"{r['target']:.3f}x",
                f"{r['adaptive']:.1f}",
                f"{r['round_robin']:.1f}",
                f"{r['ratio']:.2f}x",
                f"{r['sp_adaptive']:.3f}x",
                f"{r['sp_rr']:.3f}x",
            ]
            for r in rows
        ],
    )
    once.benchmark.extra_info["rows"] = rows
    once.benchmark.extra_info["mean_ratio"] = mean_ratio
    assert mean_ratio >= 0.9, "adaptive allocation should not converge slower"
    sp_ad = np.mean([r["sp_adaptive"] for r in rows])
    sp_rr = np.mean([r["sp_rr"] for r in rows])
    assert sp_ad >= sp_rr * 0.97
