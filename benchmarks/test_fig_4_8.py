"""Figs 4.8-4.10: over-exploration of random AF-maximiser initialisation.

Instrumented AIBO run: every iteration records, per initialisation
strategy, the AF value, the GP posterior mean and the posterior variance
of its maximised candidate.  Paper's shape (any AF): random initialisation
wins the AF contest rarely, and its candidates have the *highest posterior
variance* (pure exploration) and rarely the lowest posterior mean.
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import make_task

from benchmarks.conftest import print_table, scale


def _counts(diag):
    strategies = ("cmaes", "ga", "random")
    n = len(diag["af_values"])
    win_af = {s: 0 for s in strategies}
    win_exploit = {s: 0 for s in strategies}  # lowest posterior mean
    win_explore = {s: 0 for s in strategies}  # highest posterior variance
    tol = 1e-9
    for af_vals, mus, vars_ in zip(
        diag["af_values"], diag["posterior_mean"], diag["posterior_var"]
    ):
        # ties are common (distant starts all collapse to the prior), so a
        # strategy gets credit whenever it matches the extreme value
        best_af = max(af_vals.values())
        best_mu = min(mus.values())
        best_var = max(vars_.values())
        for s in strategies:
            if af_vals[s] >= best_af - tol:
                win_af[s] += 1
            if mus[s] <= best_mu + tol:
                win_exploit[s] += 1
            if vars_[s] >= best_var - tol:
                win_explore[s] += 1
    return win_af, win_exploit, win_explore, n


def _run(af, beta):
    dim = 60
    budget = 150 * scale()
    task = make_task("ackley", dim)
    opt = AIBO(dim, seed=0, k=50, n_init=20, af=af, beta=beta, refit_every=3,
               batch_size=10)
    res = opt.minimize(task, budget)
    return _counts(res.diagnostics)


def test_fig_4_8(once):
    results = once(lambda: {
        "ucb1.96": _run("ucb", 1.96),
        "ucb1": _run("ucb", 1.0),
        "ei": _run("ei", 1.96),
    })
    rows = []
    for af_name, (win_af, win_exploit, win_explore, n) in results.items():
        for s in ("cmaes", "ga", "random"):
            rows.append([af_name, s, win_af[s], win_exploit[s], win_explore[s]])
    print_table(
        "Figs 4.8-4.10: per-strategy wins (highest AF / lowest mean / highest var)",
        ["AF", "strategy", "AF wins", "exploit wins", "explore wins"],
        rows,
    )
    once.benchmark.extra_info["results"] = {
        k: {"af": v[0], "exploit": v[1], "explore": v[2]} for k, v in results.items()
    }
    for af_name, (win_af, win_exploit, win_explore, n) in results.items():
        heuristic_af = win_af["cmaes"] + win_af["ga"]
        assert heuristic_af >= win_af["random"], (
            f"{af_name}: heuristic inits should dominate the AF contest"
        )
        assert win_explore["random"] >= max(win_explore["cmaes"], win_explore["ga"]), (
            f"{af_name}: random init candidates should be the most explorative"
        )
