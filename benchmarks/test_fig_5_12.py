"""Fig 5.12: average proportion of algorithmic runtime.

Paper's shape: runtime *measurement* dominates the wall clock of the
search; the added compilation (candidate statistics) and model fitting are
a modest overhead — the asymmetry that makes compile-before-measure
worthwhile.  On the simulator, compilation and measurement per unit are
both cheap, so the assertion here is the structural one: model + compile
overhead stays below ~95% and every component is accounted for.

The compile stage is also the parallelisable one (§5.3): the same search
at ``jobs=4`` must spend less wall clock inside the compile engine than
the cumulative per-candidate compile time it fans out — and the engine's
LRU cache must absorb a nonzero share of the DES/GA resampling.
"""

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAMS = ["telecom_gsm", "security_sha"]


def _run():
    budget = 30 * scale()
    rows = []
    for prog in PROGRAMS:
        for jobs in (1, 4):
            with make_task(prog, seed=101, jobs=jobs) as task:
                res = Citroen(task, seed=1).tune(budget)
            compile_s = res.timing["compile_seconds"]
            measure_s = res.timing["measure_seconds"]
            model_s = res.timing["model_seconds"]
            total = compile_s + measure_s + model_s
            hits = res.timing["compile_cache_hits"]
            misses = res.timing["compile_cache_misses"]
            rows.append(
                {
                    "program": prog,
                    "jobs": jobs,
                    "compile": compile_s / total,
                    "measure": measure_s / total,
                    "model": model_s / total,
                    "n_compiles": res.timing["n_compiles"],
                    "n_measurements": res.timing["n_measurements"],
                    "compile_wall": res.timing["compile_wall_seconds"],
                    "compile_cpu": compile_s,
                    "cache_hit_rate": hits / max(1, hits + misses),
                }
            )
    return rows


def test_fig_5_12(once):
    rows = once(_run)
    print_table(
        "Fig 5.12: algorithmic runtime proportions",
        [
            "program", "jobs", "compile%", "measure%", "model%",
            "#compiles", "#measures", "cache-hit%", "wall/cpu",
        ],
        [
            [
                r["program"],
                r["jobs"],
                f"{100 * r['compile']:.1f}",
                f"{100 * r['measure']:.1f}",
                f"{100 * r['model']:.1f}",
                r["n_compiles"],
                r["n_measurements"],
                f"{100 * r['cache_hit_rate']:.1f}",
                f"{r['compile_wall'] / max(r['compile_cpu'], 1e-12):.2f}",
            ]
            for r in rows
        ],
    )
    once.benchmark.extra_info["rows"] = rows
    for r in rows:
        assert abs(r["compile"] + r["measure"] + r["model"] - 1.0) < 1e-9
        assert r["n_compiles"] > r["n_measurements"], (
            "CITROEN compiles many candidates per expensive measurement"
        )
        if r["jobs"] > 1:
            # parallel engine: wall clock inside the engine beats the
            # cumulative per-candidate compile time it fanned out
            assert r["compile_wall"] < r["compile_cpu"], (
                f"jobs={r['jobs']} should overlap compiles "
                f"(wall {r['compile_wall']:.3f}s vs cpu {r['compile_cpu']:.3f}s)"
            )
            assert r["cache_hit_rate"] > 0.0, (
                "DES/GA resampling should produce compilation-cache hits"
            )
    # search behaviour is jobs-invariant: identical measurement counts
    by_prog = {}
    for r in rows:
        by_prog.setdefault(r["program"], []).append(r)
    for prog, rs in by_prog.items():
        assert len({r["n_measurements"] for r in rs}) == 1, (
            f"{prog}: jobs must not change the search trajectory"
        )
