"""Fig 5.12: average proportion of algorithmic runtime.

Paper's shape: runtime *measurement* dominates the wall clock of the
search; the added compilation (candidate statistics) and model fitting are
a modest overhead — the asymmetry that makes compile-before-measure
worthwhile.  On the simulator, compilation and measurement per unit are
both cheap, so the assertion here is the structural one: model + compile
overhead stays below ~95% and every component is accounted for.
"""

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAMS = ["telecom_gsm", "security_sha"]


def _run():
    budget = 30 * scale()
    rows = []
    for prog in PROGRAMS:
        task = make_task(prog, seed=101)
        res = Citroen(task, seed=1).tune(budget)
        compile_s = res.timing["compile_seconds"]
        measure_s = res.timing["measure_seconds"]
        model_s = res.timing["model_seconds"]
        total = compile_s + measure_s + model_s
        rows.append(
            {
                "program": prog,
                "compile": compile_s / total,
                "measure": measure_s / total,
                "model": model_s / total,
                "n_compiles": res.timing["n_compiles"],
                "n_measurements": res.timing["n_measurements"],
            }
        )
    return rows


def test_fig_5_12(once):
    rows = once(_run)
    print_table(
        "Fig 5.12: algorithmic runtime proportions",
        ["program", "compile%", "measure%", "model%", "#compiles", "#measures"],
        [
            [
                r["program"],
                f"{100 * r['compile']:.1f}",
                f"{100 * r['measure']:.1f}",
                f"{100 * r['model']:.1f}",
                r["n_compiles"],
                r["n_measurements"],
            ]
            for r in rows
        ],
    )
    once.benchmark.extra_info["rows"] = rows
    for r in rows:
        assert abs(r["compile"] + r["measure"] + r["model"] - 1.0) < 1e-9
        assert r["n_compiles"] > r["n_measurements"], (
            "CITROEN compiles many candidates per expensive measurement"
        )
