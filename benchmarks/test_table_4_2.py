"""Table 4.2: algorithmic runtime of AIBO vs BO-grad.

The paper reports AIBO uses *less* algorithmic (non-objective) time than
BO-grad because its AF maximisation starts from far fewer, better points
(k=100/n=1 per strategy vs k=2000/n=10 random restarts).  Measured here as
wall time of a fixed-budget run on a trivial objective.
"""

import time

import numpy as np

from repro.bo import AIBO, BOGrad

from benchmarks.conftest import print_table, scale


def _cheap(x):
    return float(((x - 0.4) ** 2).sum())


def _run():
    dim = 20
    budget = 120 * scale()
    kw = dict(n_init=20, refit_every=3, batch_size=10)
    t0 = time.perf_counter()
    AIBO(dim, seed=0, k=60, **kw).minimize(_cheap, budget)
    t_aibo = time.perf_counter() - t0
    t0 = time.perf_counter()
    BOGrad(dim, seed=0, k=2000, n_top=10, **kw).minimize(_cheap, budget)
    t_bograd = time.perf_counter() - t0
    return {"aibo_seconds": t_aibo, "bograd_seconds": t_bograd}


def test_table_4_2(once):
    r = once(_run)
    print_table(
        "Table 4.2: algorithmic runtime (sphere 20D, objective cost ~ 0)",
        ["method", "seconds"],
        [["AIBO", f"{r['aibo_seconds']:.2f}"], ["BO-grad (k=2000,n=10)", f"{r['bograd_seconds']:.2f}"]],
    )
    once.benchmark.extra_info.update(r)
    assert r["aibo_seconds"] <= r["bograd_seconds"] * 1.5, (
        "AIBO's algorithmic overhead should be comparable or lower"
    )
