"""Fig 5.7: speedup as a function of the search-iteration budget.

Paper's shape: CITROEN reaches its plateau with roughly one third of the
measurements the baselines need; the advantage is largest at small
budgets ("particularly effective under constrained search budgets").
Expected here: at the smallest cut, citroen >= random; the budget ratio
for random to match citroen's early speedup is > 1.
"""

import numpy as np

from benchmarks.conftest import print_table, run_tuner, scale

PROGRAMS = ["telecom_gsm", "consumer_jpeg_c"]
TUNERS = ["citroen", "random", "boca"]


def _run():
    budget = 90 * scale()
    cuts = [max(5, budget // 8), budget // 4, budget // 2, budget]
    curves = {}
    for prog in PROGRAMS:
        for tuner in TUNERS:
            runs = [run_tuner(tuner, prog, budget, seed=s) for s in range(1, 1 + scale())]
            curves[(prog, tuner)] = [
                float(np.mean([r.speedup_over_o3(at=c) for r in runs])) for c in cuts
            ]
    return cuts, curves


def test_fig_5_7(once):
    cuts, curves = once(_run)
    rows = [
        [prog, tuner] + [f"{v:.3f}x" for v in curve]
        for (prog, tuner), curve in curves.items()
    ]
    print_table(
        "Fig 5.7: speedup vs measurement budget",
        ["program", "tuner"] + [f"@{c}" for c in cuts],
        rows,
    )
    once.benchmark.extra_info["cuts"] = cuts
    once.benchmark.extra_info["curves"] = {f"{p}/{t}": v for (p, t), v in curves.items()}

    early_gaps = []
    for prog in PROGRAMS:
        cit = curves[(prog, "citroen")]
        rnd = curves[(prog, "random")]
        early_gaps.append(cit[0] - rnd[0])
        # budget-efficiency: citroen's half-budget result should match or
        # beat random's full-budget result on average
    assert np.mean(early_gaps) > -0.05, "citroen should lead at small budgets"
    cit_half = np.mean([curves[(p, "citroen")][2] for p in PROGRAMS])
    rnd_full = np.mean([curves[(p, "random")][3] for p in PROGRAMS])
    assert cit_half >= rnd_full * 0.97
