"""Surrogate hot-path performance (§5.4 overhead analysis).

The paper's search-overhead argument assumes the cost model stays cheap
relative to profiling; PR 1's parallel compile engine made the model the
limiting factor, and this benchmark regenerates the numbers behind the
fix: incremental O(n^2) GP conditioning + warm-started refits +
vectorized featurization versus the legacy full-refit/scalar path.

Structural assertions only where they are robust on slow CI boxes:

* the incremental ``add_observation`` must beat a legacy full refit by a
  wide margin at n=256/512 (the asymptotics are O(n^2) vs O(n^3) x
  L-BFGS-B iterations — anything under 3x means the fast path broke);
* end-to-end, the fast model path must cut model-side wall time (the
  ``fit`` + ``featurize`` + ``acquisition`` spans) by >= 2x on a seeded
  100-measurement tune (locally it is >10x; the CI floor is conservative)
  while full refits collapse from ~budget to a logarithmic schedule.
"""

from repro.bench import bench_micro, bench_tune

from benchmarks.conftest import print_table, scale


def _run():
    micro = bench_micro(sizes=(64, 256, 512), seed=0)
    fast = bench_tune(budget=100 * scale(), seed=1)
    legacy = bench_tune(budget=100 * scale(), seed=1, legacy=True)
    return micro, fast, legacy


def test_perf_surrogate(once):
    micro, fast, legacy = once(_run)

    rows = []
    for row in micro:
        for op in ("fit", "add_observation", "predict", "coverage"):
            f = row["fast"][op]["wall"] * 1e3
            l = row["legacy"][op]["wall"] * 1e3
            rows.append(
                [row["n"], op, f"{f:.2f}", f"{l:.2f}",
                 f"{l / f:.1f}x" if f > 0 else "inf"]
            )
    print_table(
        "Surrogate micro benchmarks (fast vs legacy path)",
        ["n", "op", "fast ms", "legacy ms", "speedup"],
        rows,
    )
    speedup = legacy["model_wall_seconds"] / fast["model_wall_seconds"]
    print_table(
        "End-to-end model-side wall time (100-measurement seeded tune)",
        ["path", "model wall ms", "refits", "extends", "speedup vs -O3"],
        [
            ["fast", f"{fast['model_wall_seconds'] * 1e3:.1f}",
             fast["gp_refits"], fast["gp_extends"],
             f"{fast['speedup_vs_o3']:.3f}x"],
            ["legacy", f"{legacy['model_wall_seconds'] * 1e3:.1f}",
             legacy["gp_refits"], legacy["gp_extends"],
             f"{legacy['speedup_vs_o3']:.3f}x"],
        ],
    )
    print(f"\nmodel-side wall speedup: {speedup:.1f}x")

    once.benchmark.extra_info.update(
        model_wall_fast=fast["model_wall_seconds"],
        model_wall_legacy=legacy["model_wall_seconds"],
        model_wall_speedup=speedup,
        gp_refits=fast["gp_refits"],
        gp_extends=fast["gp_extends"],
    )

    # asymptotic win: one O(n^2) extend vs one O(n^3) hyperfit rebuild
    for row in micro:
        if row["n"] >= 256:
            add_fast = row["fast"]["add_observation"]["wall"]
            add_legacy = row["legacy"]["add_observation"]["wall"]
            assert add_legacy > 3.0 * add_fast, (
                f"incremental update lost its edge at n={row['n']}: "
                f"{add_fast * 1e3:.2f} ms vs {add_legacy * 1e3:.2f} ms"
            )
    # the refit schedule must be logarithmic, not per-iteration
    assert fast["gp_extends"] > fast["gp_refits"]
    assert fast["gp_refits"] < legacy["gp_refits"] / 4
    # end-to-end: the acceptance target is 3x; assert a conservative 2x so
    # a noisy CI box cannot flake the suite (locally this is >10x)
    assert speedup >= 2.0, f"model-side speedup collapsed to {speedup:.2f}x"
    # both paths finish the full budget and find a real optimum
    assert fast["n_measurements"] == legacy["n_measurements"]
    assert fast["speedup_vs_o3"] > 1.0 and legacy["speedup_vs_o3"] > 1.0
