"""Fig 4.13: comparison with other AF-maximiser initialisation strategies.

AIBO against initialisations that do NOT use the black-box history
(CMA-ES directly on the AF, Boltzmann sampling of random points) and
against Spearmint's Gaussian spray around the incumbent.  Paper's shape:
AIBO clearly beats the history-free strategies; the Gaussian spray is
competitive on some tasks but brittle (over-exploitation).
"""

import numpy as np

from repro.bo import AIBO
from repro.synthetic import make_task, push_surrogate

from benchmarks.conftest import print_table, scale

STRATEGIES = {
    "aibo": ("cmaes", "ga", "random"),
    "bo-cmaes_grad": ("cmaes-on-af",),
    "bo-boltzmann_grad": ("boltzmann",),
    "bo-gaussian_grad": ("gaussian-spray",),
}


def _run():
    budget = 200 * scale()
    out = {}
    tasks = {"ackley60": (make_task("ackley", 60), 60),
             "push14": (push_surrogate(14, seed=7), 14)}
    for tname, (task, dim) in tasks.items():
        for label, strategies in STRATEGIES.items():
            res = AIBO(dim, seed=0, k=50, n_init=25, strategies=strategies,
                       refit_every=4, batch_size=10).minimize(task, budget)
            out[(tname, label)] = res.best_y
    return out


def test_fig_4_13(once):
    out = once(_run)
    rows = []
    for tname in ("ackley60", "push14"):
        rows.append([tname] + [f"{out[(tname, s)]:.2f}" for s in STRATEGIES])
    print_table("Fig 4.13: alternative initialisation strategies",
                ["task"] + list(STRATEGIES), rows)
    once.benchmark.extra_info["results"] = {f"{t}/{s}": v for (t, s), v in out.items()}
    # AIBO beats the history-free initialisations on the high-dim task
    assert out[("ackley60", "aibo")] <= out[("ackley60", "bo-cmaes_grad")] * 1.05
    assert out[("ackley60", "aibo")] <= out[("ackley60", "bo-boltzmann_grad")] * 1.05
