"""Fig 4.6: AIBO vs baselines on (simulated) real-world tasks.

The thesis' real-world tasks (robot push, rover trajectory, MuJoCo
locomotion, NAS-Bench, Lasso-DNA) need simulators we cannot ship offline;
``repro.synthetic.tasks`` provides deterministic surrogates that preserve
the optimisation structure (sparse reward with a narrow basin; smooth
multimodal trajectory scores — see DESIGN.md's substitution table).
Maximisation tasks, negated.  Expected shape: AIBO at or near the best
method on both tasks.
"""

import numpy as np

from repro.bo import AIBO, BOGrad, TuRBO
from repro.heuristics import CMAES, ContinuousGA
from repro.synthetic import push_surrogate, rover_surrogate

from benchmarks.conftest import print_table, scale


def _run_heuristic(opt, task, budget, batch=10):
    for _ in range(budget // batch):
        X = opt.ask(batch)
        opt.tell(X, np.array([task(x) for x in X]))
    return opt.best_y


def _run():
    budget = 250 * scale()
    tasks = {
        "push14": (push_surrogate(14, seed=7), 14),
        "rover60": (rover_surrogate(60, seed=9), 60),
    }
    kw = dict(n_init=30, refit_every=4, batch_size=10)
    out = {}
    for tname, (task, dim) in tasks.items():
        out[(tname, "aibo")] = AIBO(dim, seed=0, k=60, **kw).minimize(task, budget).best_y
        out[(tname, "bo-grad")] = BOGrad(dim, seed=0, k=400, n_top=5, **kw).minimize(task, budget).best_y
        out[(tname, "cmaes")] = _run_heuristic(CMAES(dim, seed=0), task, budget)
        out[(tname, "ga")] = _run_heuristic(ContinuousGA(dim, seed=0), task, budget)
        out[(tname, "turbo")] = TuRBO(dim, seed=0, n_init=30).minimize(task, budget).best_y
    return out


def test_fig_4_6(once):
    out = once(_run)
    methods = ["aibo", "bo-grad", "cmaes", "ga", "turbo"]
    rows = []
    for tname in ("push14", "rover60"):
        rows.append([tname] + [f"{out[(tname, m)]:.2f}" for m in methods])
    print_table(
        "Fig 4.6: simulated real-world tasks (reward negated: lower is better)",
        ["task"] + methods,
        rows,
    )
    once.benchmark.extra_info["results"] = {f"{t}/{m}": v for (t, m), v in out.items()}
    for tname in ("push14", "rover60"):
        best = min(out[(tname, m)] for m in methods)
        worst = max(out[(tname, m)] for m in methods)
        band = (worst - best) or 1.0
        assert out[(tname, "aibo")] <= best + 0.6 * band, (
            f"AIBO should be near the front on {tname}"
        )
