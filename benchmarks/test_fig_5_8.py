"""Fig 5.8: ablation study of CITROEN's design choices.

Variants (paper's ablation dimensions + DESIGN.md's call-outs):

* full            — the complete system;
* no-coverage     — vanilla UCB, no coverage damping / novelty budget;
* no-dedup        — measure statistics-identical binaries again;
* random-gen      — drop the DES/GA candidate generators;
* raw-seq         — drop statistics features (raw sequence encoding).

Expected shape: `full` at or near the top of the mean; `raw-seq` (no
statistics) clearly below `full`, matching the paper's finding that the
statistics features carry the method.
"""

import numpy as np

from repro import Citroen

from benchmarks.conftest import make_task, print_table, scale

PROGRAMS = ["telecom_gsm", "consumer_jpeg_c", "consumer_tiff2bw"]

VARIANTS = {
    "full": {},
    "no-coverage": {"use_coverage": False},
    "no-dedup": {"use_dedup": False},
    "random-gen": {"generators": ("random",)},
    "raw-seq": {"feature_mode": "seq"},
}


def _run():
    budget = 40 * scale()
    seeds = range(1, 2 + scale())
    table = {}
    for variant, kwargs in VARIANTS.items():
        sps = []
        for prog in PROGRAMS:
            for s in seeds:
                task = make_task(prog, seed=100 + s)
                res = Citroen(task, seed=s, **kwargs).tune(budget)
                sps.append(res.speedup_over_o3())
        table[variant] = float(np.mean(sps))
    return table


def test_fig_5_8(once):
    table = once(_run)
    print_table(
        f"Fig 5.8: CITROEN ablation (mean speedup over -O3, budget {40 * scale()})",
        ["variant", "speedup"],
        [[k, f"{v:.3f}x"] for k, v in table.items()],
    )
    once.benchmark.extra_info["table"] = table
    assert table["full"] >= max(table.values()) * 0.97, "full system should lead"
    assert table["full"] >= table["raw-seq"] - 0.02, (
        "statistics features should not hurt vs raw sequences"
    )
