#!/usr/bin/env python
"""Quickstart: tune the phase ordering of a cBench program with CITROEN.

Runs the full pipeline the paper describes: hot-module identification,
statistics-guided Bayesian search with a 100-measurement budget, and a
comparison against the -O3 baseline and random search.

Usage:  python examples/quickstart.py [program] [budget]
"""

import sys

from repro import AutotuningTask, Citroen, RandomSearchTuner, cbench_names, cbench_program


def main() -> None:
    program_name = sys.argv[1] if len(sys.argv) > 1 else "telecom_gsm"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    if program_name not in cbench_names():
        raise SystemExit(f"unknown program {program_name!r}; options: {cbench_names()}")

    print(f"=== CITROEN quickstart: {program_name}, budget {budget} measurements ===\n")
    task = AutotuningTask(cbench_program(program_name), platform="arm-a57", seed=0)
    print(f"platform          : {task.platform.name}")
    print(f"hot modules       : {task.hot_modules}")
    print(f"-O0 runtime       : {task.o0_runtime * 1e6:8.2f} us")
    print(f"-O3 runtime       : {task.o3_runtime * 1e6:8.2f} us")
    print(f"search space      : {task.alphabet} passes, sequences of length {task.seq_length}")
    print()

    result = Citroen(task, seed=1).tune(budget)
    print(f"CITROEN best      : {result.best_runtime * 1e6:8.2f} us "
          f"({result.speedup_over_o3():.3f}x over -O3)")
    print(f"  differential OK : {result.extras['n_incorrect']} incorrect binaries")
    print(f"  dedup hits      : {result.extras['dedup_hits']} avoided measurements")
    print(f"  top statistics  : {result.extras['top_statistics']}")
    for module, seq in result.best_config.items():
        print(f"  best sequence[{module}]: {' '.join(seq[:10])} ...")

    rand_task = AutotuningTask(cbench_program(program_name), platform="arm-a57", seed=0)
    rand = RandomSearchTuner(rand_task, seed=1).tune(budget)
    print(f"\nrandom search     : {rand.best_runtime * 1e6:8.2f} us "
          f"({rand.speedup_over_o3():.3f}x over -O3)")
    gain = result.speedup_over_o3() / rand.speedup_over_o3()
    print(f"CITROEN vs random : {gain:.3f}x")


if __name__ == "__main__":
    main()
