#!/usr/bin/env python
"""Tuning a user-written program: the practicality framework (§5.3.6).

The autotuning barrier the paper calls out is that users must re-implement
their build process to try custom pass orders.  With this library, the
user's job is just to describe the program (here: built directly with the
IR builder, as a front end would) — ``AutotuningTask`` takes care of the
compile/measure/verify wiring and CITROEN does the rest.
"""

from repro import AutotuningTask, Citroen
from repro.compiler.builder import FunctionBuilder, c
from repro.compiler.ir import GlobalVar, I32, I64, PTR, Module
from repro.workloads import Program
from repro.workloads.kernels import add_data_global, emit_sum_loop


def build_my_program() -> Program:
    """A little image-blend program: one hot kernel module + a driver."""
    kernel = Module("blend_kernel")
    kb = FunctionBuilder(kernel, "blend", [("a", PTR), ("bg", PTR), ("out", PTR), ("n", I32)], I32)

    def px(bb, i):
        x = bb.load(I32, bb.gep("a", i, I32))
        y = bb.load(I32, bb.gep("bg", i, I32))
        mixed = bb.ashr(bb.add(bb.mul(x, c(3, I32), I32), y, I32), c(2, I32), I32)
        bb.store(mixed, bb.gep("out", i, I32))

    kb.counted_loop(c(0, I32), "n", px, tag="px")
    chk = emit_sum_loop(kb, "out", 32, tag="chk")
    kb.ret(chk)

    main = Module("blend_main")
    add_data_global(main, "img_a", I32, 64, seed=5, lo=0, hi=256)
    add_data_global(main, "img_b", I32, 64, seed=6, lo=0, hi=256)
    main.add_global(GlobalVar("result", I32, [0] * 64))
    mb = FunctionBuilder(main, "main", [], I32)
    a, bg, out = mb.gaddr("img_a"), mb.gaddr("img_b"), mb.gaddr("result")
    total = mb.alloca(I32, hint="total")
    mb.store(c(0, I32), total)

    def frame(bb, i):
        v = bb.call("blend", [a, bg, out, c(64, I32)], I32)
        cur = bb.load(I32, total)
        bb.store(bb.add(cur, v, I32), total)

    mb.counted_loop(c(0, I32), c(8, I32), frame, tag="frames")
    t = mb.load(I32, total)
    mb.output(t)
    mb.ret(t)
    return Program("my_blend", [kernel, main], suite="custom")


def main() -> None:
    program = build_my_program()
    print(f"program {program.name}: modules {program.module_names()}")
    print(f"reference output: {program.reference_output().ret}\n")

    task = AutotuningTask(program, platform="amd-x86", seed=0)
    print(f"hot modules: {task.hot_modules}")
    print(f"-O3 runtime: {task.o3_runtime * 1e6:.2f} us")

    result = Citroen(task, seed=2).tune(40)
    print(f"\ntuned runtime: {result.best_runtime * 1e6:.2f} us "
          f"({result.speedup_over_o3():.3f}x over -O3)")
    print(f"all binaries passed differential testing: "
          f"{result.extras['n_incorrect'] == 0}")
    for module, seq in result.best_config.items():
        print(f"best sequence[{module}]:\n   {' '.join(seq)}")


if __name__ == "__main__":
    main()
