#!/usr/bin/env python
"""Cross-program transfer: the thesis' §6.3.2 future-work direction, built.

The best pass *sequence* is program-specific, but whether a pass tends to
help at all carries across programs.  :class:`PassCorrelationPrior` distils
that signal from completed tuning runs and biases a new program's candidate
generation toward historically useful passes — coarse offline knowledge
feeding the fine-grained online search (§6.3.3).

Usage:  python examples/transfer_learning.py [budget]
"""

import sys

import numpy as np

from repro import AutotuningTask, Citroen, cbench_program
from repro.core import PassCorrelationPrior

DONORS = ["telecom_gsm", "consumer_tiff2bw", "automotive_bitcount"]
TARGET = "consumer_jpeg_c"


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40

    prior = PassCorrelationPrior()
    print("training the pass-correlation prior on donor programs:")
    for name in DONORS:
        task = AutotuningTask(cbench_program(name), platform="arm-a57", seed=0)
        result = Citroen(task, seed=1).tune(budget)
        prior.observe_run(result)
        print(f"   {name:22s} speedup {result.speedup_over_o3():.3f}x")

    print(f"\nhistorically most helpful passes (across {prior.n_runs} runs):")
    scores = prior.scores()
    for p in prior.top_passes(8):
        print(f"   {p:24s} {scores[p]:+.3f}")

    print(f"\ntuning the unseen target {TARGET}:")
    sp = {}
    for label, kwargs in (("cold start", {}), ("with prior", {"pass_prior": prior})):
        vals = []
        for s in (1, 2, 3):
            task = AutotuningTask(cbench_program(TARGET), platform="arm-a57", seed=10 + s)
            res = Citroen(task, seed=s, **kwargs).tune(budget)
            vals.append(res.speedup_over_o3())
        sp[label] = float(np.mean(vals))
        print(f"   {label:12s} mean speedup {sp[label]:.3f}x")

    print(f"\ntransfer effect: {sp['with prior'] / sp['cold start']:.3f}x")


if __name__ == "__main__":
    main()
