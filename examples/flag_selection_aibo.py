#!/usr/bin/env python
"""AIBO on the compiler flag-selection task (Ch. 4, Fig 4.4).

Flag selection — enabling/disabling -O3 pipeline passes with the order
fixed — is the binary cousin of phase ordering.  The thesis uses it to
show the heuristic AF-maximiser initialisation matters on compiler
problems too: AIBO (CMA-ES + GA + random initialisation) against BO-grad
(random initialisation only), both embedded in the continuous unit box
with a 0.5 threshold.

Usage:  python examples/flag_selection_aibo.py [budget]
"""

import sys

import numpy as np

from repro.bo import AIBO, BOGrad
from repro.synthetic import FlagSelectionTask


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    task = FlagSelectionTask(platform="arm-a57", seed=0)
    o3 = task.baseline_o3()
    print(f"flag-selection task: {task.dim} binary flags (-O3 pipeline passes)")
    print(f"-O3 (all flags on): {o3 * 1e6:.2f} us\n")

    aibo = AIBO(task.dim, seed=1, n_init=15, k=40, refit_every=2)
    res_a = aibo.minimize(task, budget)

    task_b = FlagSelectionTask(platform="arm-a57", seed=0)
    bog = BOGrad(task_b.dim, seed=1, n_init=15, k=300, n_top=5, refit_every=2)
    res_b = bog.minimize(task_b, budget)

    print(f"{'method':10s}{'best runtime':>15s}{'vs -O3':>9s}")
    for name, res in (("AIBO", res_a), ("BO-grad", res_b)):
        print(f"{name:10s}{res.best_y * 1e6:>12.2f} us{o3 / res.best_y:>8.3f}x")

    wins = res_a.diagnostics["winner"]
    print(f"\nAIBO winning strategies: "
          f"{ {w: wins.count(w) for w in sorted(set(wins))} }")
    best_flags = FlagSelectionTask(platform="arm-a57", seed=0).decode(res_a.best_x)
    print(f"best flag subset keeps {len(best_flags)}/{task.dim} passes")


if __name__ == "__main__":
    main()
