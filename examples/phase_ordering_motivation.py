#!/usr/bin/env python
"""The paper's motivating example (Fig 5.1 / Table 5.1), end to end.

Compiles the telecom_gsm ``long_term`` dot-product kernel with five pass
sequences and prints, for each, the pass-related compilation statistics and
the measured speedup over -O3 — reproducing the order-sensitivity that
motivates statistics-guided search:

* ``mem2reg slp-vectorizer``       -> vectorises, fast;
* ``slp-vectorizer mem2reg``       -> wrong order, nothing happens;
* ``mem2reg instcombine slp-...``  -> instcombine widens the arithmetic to
  i64 first, SLP profitability fails, slow;
* ``mem2reg slp-... instcombine``  -> vectorise *then* combine: fast again.
"""

from repro import cbench_program, pipeline, run_opt
from repro.machine import Profiler, get_platform
from repro.machine.interp import run_program

SEQUENCES = [
    ["mem2reg", "slp-vectorizer"],
    ["slp-vectorizer", "mem2reg"],
    ["instcombine", "mem2reg", "slp-vectorizer"],
    ["mem2reg", "instcombine", "slp-vectorizer"],
    ["mem2reg", "slp-vectorizer", "instcombine"],
]

STAT_COLUMNS = [
    ("slp-vectorizer.NumVectorInstructions", "SLP.NVI"),
    ("mem2reg.NumPHIInsert", "m2r.NPI"),
    ("mem2reg.NumPromoted", "m2r.NP"),
    ("instcombine.NumCombined", "ic.NC"),
]


def main() -> None:
    program = cbench_program("telecom_gsm")
    platform = get_platform("arm-a57")
    profiler = Profiler(platform, seed=0)
    target = platform.target_info()

    ref = program.reference_output().output_signature()

    # -O3 baseline for the speedup column
    o3_linked, _ = program.compile({m.name: pipeline("-O3") for m in program.modules}, target)
    o3 = profiler.measure(o3_linked).seconds

    header = f"{'No.':4s}{'Pass Sequence':45s}" + "".join(f"{h:>9s}" for _, h in STAT_COLUMNS) + f"{'Speedup':>9s}"
    print(header)
    print("-" * len(header))
    for k, seq in enumerate(SEQUENCES, 1):
        config = {m.name: pipeline("-O3") for m in program.modules}
        config["long_term"] = seq  # only the module under study varies
        linked, results = program.compile(config, target)
        out = run_program(linked, fuel=program.fuel)
        assert out.output_signature() == ref, "differential test failed!"
        t = profiler.measure(linked).seconds
        stats = results["long_term"].stats_json()
        cols = "".join(f"{stats.get(key, 0):9d}" for key, _ in STAT_COLUMNS)
        print(f"{k:<4d}{' '.join(seq):45s}{cols}{o3 / t:8.2f}x")

    print(
        "\nApplying 'mem2reg,slp-vectorizer' vectorises the kernel; inserting"
        "\n'instcombine' in between widens the multiply to i64 and profitability"
        "\nfails — the interaction compilation statistics expose (Table 5.1)."
    )


if __name__ == "__main__":
    main()
