#!/usr/bin/env python
"""Adaptive multi-module budget allocation on a SPEC-like program (§1.3).

Real programs have many source files; tuning them all uniformly wastes the
budget on cold code.  CITROEN's acquisition function arbitrates *between
modules* as well as between sequences, so measurements flow to whichever
module currently promises the most improvement.  This example compares
that adaptive policy against round-robin allocation on 525.x264-like, a
four-module program with skewed hotness.

Usage:  python examples/multimodule_tuning.py [budget]
"""

import sys

import numpy as np

from repro import AutotuningTask, Citroen, spec_program


def run(policy: str, budget: int, seed: int):
    task = AutotuningTask(spec_program("525.x264_r"), platform="arm-a57", seed=seed)
    tuner = Citroen(task, seed=seed, module_policy=policy)
    return task, tuner.tune(budget)


def measurements_to_reach(result, target_speedup: float):
    for i in range(1, len(result.measurements) + 1):
        if result.speedup_over_o3(at=i) >= target_speedup:
            return i
    return None


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    task, adaptive = run("adaptive", budget, seed=3)
    _, rr = run("round-robin", budget, seed=3)

    print("hot modules and their -O3 runtime share:")
    for m, w in task.module_weights.items():
        print(f"   {m:16s} {100 * w:5.1f}%")
    counts = {
        m: adaptive.extras["chosen_modules"].count(m) for m in task.hot_modules
    }
    print(f"\nadaptive allocation of {budget} measurements: {counts}")

    print(f"\n{'policy':14s}{'speedup over -O3':>18s}")
    print(f"{'adaptive':14s}{adaptive.speedup_over_o3():>17.3f}x")
    print(f"{'round-robin':14s}{rr.speedup_over_o3():>17.3f}x")

    target = min(adaptive.speedup_over_o3(), rr.speedup_over_o3()) * 0.98
    na = measurements_to_reach(adaptive, target)
    nr = measurements_to_reach(rr, target)
    if na and nr:
        print(
            f"\nmeasurements to reach {target:.3f}x: adaptive {na}, round-robin {nr}"
            f" -> {nr / na:.2f}x faster convergence"
        )


if __name__ == "__main__":
    main()
